// Package sim is the wireless-broadcast substrate the paper assumes: a
// server cyclically transmits buckets over k channels, one bucket per slot
// per channel, and a mobile client retrieves data by tuning to a single
// channel at a time, following (channel, offset) pointers and dozing in
// between. It makes the paper's access-time/tuning-time story executable:
//
//   - probe wait: from arrival until the bucket containing the index root
//     (every channel-1 bucket carries a pointer to the next cycle start);
//   - data wait: from the cycle start until the requested data bucket —
//     whose weighted average over data nodes is exactly Formula 1;
//   - tuning time: the number of buckets actually read, which with the
//     paper's doze mode determines energy consumption.
//
// Compile turns any feasible Allocation into a Program of linked buckets;
// Query drives a single client request against it. The optional root
// replication (Options.FillWithRootCopies) implements the paper's
// future-work direction of replicating index nodes to cut the initial
// probe, reusing otherwise-empty slots.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/fault"
	"repro/internal/tree"
)

// Sentinel corruption errors. Query and its range/adaptive variants wrap
// these with %w so callers can classify a failure with errors.Is instead
// of matching the position/label detail in the message text.
var (
	// ErrMissingRoot reports a cycle start whose channel-1 slot carries
	// neither the index root nor a root copy.
	ErrMissingRoot = errors.New("sim: cycle start does not hold the root")

	// ErrBrokenPointer reports an index pointer whose target slot holds a
	// different node than the pointer promised (or a bucket missing the
	// pointer the descent needs).
	ErrBrokenPointer = errors.New("sim: broken index pointer")
)

// Pointer addresses a future bucket relative to the current slot.
type Pointer struct {
	Channel int // 1-based target channel
	Offset  int // slots ahead of the current slot (> 0)
	Target  tree.ID
}

// Bucket is one transmitted unit. Empty filler buckets have Node == tree.None.
type Bucket struct {
	Node tree.ID
	// Children points at the node's children (index buckets only).
	Children []Pointer
	// NextCycle is the offset to the first slot of the next cycle; set on
	// every bucket of every channel so any arriving client — including one
	// redirected off a dead channel — can synchronize from wherever it is.
	NextCycle int
	// RootCopy marks a replicated root bucket occupying a filler slot.
	RootCopy bool
}

// Options configures program compilation.
type Options struct {
	// FillWithRootCopies replicates the index root into every empty
	// channel-1 slot, letting clients that tune in mid-cycle begin their
	// descent immediately (pointers wrap into the next cycle as needed).
	FillWithRootCopies bool
}

// Program is a compiled cyclic broadcast.
type Program struct {
	t        *tree.Tree
	k        int
	cycleLen int
	buckets  [][]Bucket // [channel-1][slot-1]
	slotOf   []alloc.Position
	opt      Options
	// rootCh is the channel whose cycle starts carry the index root: 1 for
	// a directly compiled program, the first surviving channel for a
	// program remapped onto a degraded tower (see Remap).
	rootCh int
}

// Tree returns the index tree the program broadcasts.
func (p *Program) Tree() *tree.Tree { return p.t }

// Channels returns the channel count.
func (p *Program) Channels() int { return p.k }

// RootChannel returns the channel whose cycle starts hold the index root
// — channel 1 except for programs remapped onto a degraded channel set.
func (p *Program) RootChannel() int {
	if p.rootCh == 0 {
		return 1
	}
	return p.rootCh
}

// CycleLen returns the broadcast cycle length in slots.
func (p *Program) CycleLen() int { return p.cycleLen }

// BucketAt returns the bucket transmitted on channel ch at cycle slot s
// (both 1-based).
func (p *Program) BucketAt(ch, s int) Bucket { return p.buckets[ch-1][s-1] }

// Position returns the (channel, cycle slot) the allocation assigned to
// node id — the airing a batch retrieval planner schedules around. Root
// copies are not reflected: the returned position is the node's primary
// slot. On a remapped program dark-channel nodes report their remapped
// physical position.
func (p *Program) Position(id tree.ID) alloc.Position { return p.slotOf[id] }

// Compile links an allocation into a broadcast program.
func Compile(a *alloc.Allocation, opt Options) (*Program, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	t := a.Tree()
	if rp := a.Pos(t.Root()); rp.Channel != 1 || rp.Slot != 1 {
		// The client protocol requires the cycle to open with the root on
		// the first channel (Section 2.1 of the paper).
		return nil, fmt.Errorf("sim: root must be at channel 1 slot 1, got channel %d slot %d",
			rp.Channel, rp.Slot)
	}
	p := &Program{
		t:        t,
		k:        a.Channels(),
		cycleLen: a.NumSlots(),
		slotOf:   make([]alloc.Position, t.NumNodes()),
		opt:      opt,
		rootCh:   1,
	}
	p.buckets = make([][]Bucket, p.k)
	for ch := range p.buckets {
		p.buckets[ch] = make([]Bucket, p.cycleLen)
		for s := range p.buckets[ch] {
			p.buckets[ch][s] = Bucket{Node: tree.None}
		}
	}
	for i := 0; i < t.NumNodes(); i++ {
		id := tree.ID(i)
		pos := a.Pos(id)
		p.slotOf[id] = pos
		b := Bucket{Node: id}
		for _, c := range t.Children(id) {
			cp := a.Pos(c)
			b.Children = append(b.Children, Pointer{
				Channel: cp.Channel,
				Offset:  cp.Slot - pos.Slot,
				Target:  c,
			})
		}
		p.buckets[pos.Channel-1][pos.Slot-1] = b
	}
	// Every bucket on every channel advertises the next cycle start, so a
	// client that lost its channel mid-descent can resynchronize from any
	// surviving channel instead of only from channel 1.
	for ch := range p.buckets {
		for s := 1; s <= p.cycleLen; s++ {
			p.buckets[ch][s-1].NextCycle = p.cycleLen - s + 1
		}
	}
	if opt.FillWithRootCopies && t.NumNodes() > 1 {
		p.fillRootCopies(a)
	}
	return p, nil
}

// fillRootCopies writes a replica of the root into every empty channel-1
// slot, with child offsets wrapping into the next cycle when the child's
// slot has already passed.
func (p *Program) fillRootCopies(a *alloc.Allocation) {
	t := p.t
	root := t.Root()
	for s := 1; s <= p.cycleLen; s++ {
		if p.buckets[0][s-1].Node != tree.None {
			continue
		}
		b := Bucket{Node: root, RootCopy: true, NextCycle: p.cycleLen - s + 1}
		for _, c := range t.Children(root) {
			cp := a.Pos(c)
			off := cp.Slot - s
			if off <= 0 {
				off += p.cycleLen
			}
			b.Children = append(b.Children, Pointer{Channel: cp.Channel, Offset: off, Target: c})
		}
		p.buckets[0][s-1] = b
	}
}

// Power is the per-slot energy model: Active while reading a bucket, Doze
// while waiting with the receiver off.
type Power struct {
	Active, Doze float64
}

// Metrics reports one query's cost, all in slots except Energy.
type Metrics struct {
	// ProbeWait is the time from arrival until the slot holding the root
	// bucket the descent started from begins.
	ProbeWait int
	// DataWait is the time from that root bucket's slot to the end of the
	// slot carrying the requested data.
	DataWait int
	// AccessTime = ProbeWait + DataWait: arrival to data in hand.
	AccessTime int
	// TuningTime is the number of buckets read (receiver active),
	// including redundant wake-ups that yielded a lost or corrupt frame.
	TuningTime int
	// Retries counts redundant wake-ups on a lossy channel: reads that
	// returned nothing usable, each answered by re-tuning to the same
	// (channel, slot) in the next broadcast cycle. Zero on a perfect
	// medium.
	Retries int
	// Restarts counts descents abandoned because the broadcast program was
	// hot-swapped mid-traversal: the client observed a bucket from a newer
	// epoch, discarded its cached pointers and restarted from the new root.
	// Restarts share the retry budget with Retries, Failovers and
	// Reconnects. Zero on a static broadcast.
	Restarts int
	// Failovers counts channel failovers: descents abandoned because the
	// client declared the channel it was reading dead (DeadAir consecutive
	// unusable reads) and re-tuned via a surviving channel. Failovers share
	// the retry budget with Retries, Restarts and Reconnects. Zero
	// unless the query ran under an outage schedule.
	Failovers int
	// Reconnects counts re-dial attempts after the station itself crashed
	// and severed the connection: each backoff step that redials (successfully
	// or not) counts one. Reconnects share the retry budget
	// (Retries + Restarts + Failovers + Reconnects ≤ MaxRetries). Zero
	// unless the query ran under a downtime schedule.
	Reconnects int
	// Conflicts counts batch targets that could not be read at their first
	// airing after arrival because the single tuner was busy on another
	// channel — two wanted nodes overlapped on the air — forcing a wait
	// for a later cycle. Copied from the executed BatchPlan; zero on
	// single-key queries.
	Conflicts int
	// ExtraCycles is the total number of whole broadcast cycles lost to
	// those conflicts (a target pushed j cycles past its first airing
	// contributes j). Zero on single-key queries.
	ExtraCycles int
	// Energy = Active·TuningTime + Doze·(AccessTime − TuningTime).
	Energy float64
}

// DefaultMaxRetries is the per-query retry budget when FaultConfig does
// not set one. It bounds how many lost cycles a client will chase before
// giving up with fault.ErrRetryBudget.
const DefaultMaxRetries = 32

// FaultConfig subjects a query to a lossy channel: every bucket read
// draws an outcome from the model, and a lost or corrupt read is retried
// at the same cycle slot one full cycle later, up to MaxRetries per query.
type FaultConfig struct {
	// Model is the seeded per-slot fault distribution; the zero Model is
	// a perfect channel.
	Model fault.Model
	// MaxRetries bounds redundant wake-ups per query (0 = DefaultMaxRetries).
	MaxRetries int
}

func (fc FaultConfig) budget() int {
	if fc.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return fc.MaxRetries
}

func (m *Metrics) finish(pw Power) {
	m.AccessTime = m.ProbeWait + m.DataWait
	doze := m.AccessTime - m.TuningTime
	if doze < 0 {
		doze = 0
	}
	m.Energy = pw.Active*float64(m.TuningTime) + pw.Doze*float64(doze)
}

// slotInCycle maps a global 0-based time to a 1-based cycle slot.
func (p *Program) slotInCycle(t int) int { return t%p.cycleLen + 1 }

// Query retrieves the data node target, arriving at the beginning of
// global slot arrival (any non-negative integer; the cycle phase is
// arrival mod CycleLen). It uses only bucket pointers — never the tree
// structure directly — so it exercises the compiled program end to end.
func (p *Program) Query(arrival int, target tree.ID, pw Power) (Metrics, error) {
	return p.QueryFaulty(arrival, target, pw, FaultConfig{})
}

// QueryFaulty is Query over a lossy channel: every read draws from the
// fault model, lost/corrupt reads are retried on the next cycle, and the
// returned Metrics include the redundant wake-ups. It fails with an error
// wrapping fault.ErrRetryBudget when the budget runs out.
func (p *Program) QueryFaulty(arrival int, target tree.ID, pw Power, fc FaultConfig) (Metrics, error) {
	if arrival < 0 {
		return Metrics{}, fmt.Errorf("sim: negative arrival %d", arrival)
	}
	if !p.t.IsData(target) {
		return Metrics{}, fmt.Errorf("sim: target %s is not a data node", p.t.Label(target))
	}
	m, _, err := p.run(arrival, fc, func(b Bucket) (tree.ID, bool) {
		if b.Node == target {
			return tree.None, true
		}
		for _, c := range b.Children {
			if c.Target == target || p.t.IsAncestor(c.Target, target) {
				return c.Target, false
			}
		}
		return tree.None, false
	}, pw)
	if err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// QueryKey retrieves the data item with the given key on a keyed tree.
// found is false when no item carries the key; the client still pays the
// descent to the deepest enclosing range (a negative lookup).
func (p *Program) QueryKey(arrival int, key int64, pw Power) (Metrics, bool, error) {
	return p.QueryKeyFaulty(arrival, key, pw, FaultConfig{})
}

// QueryKeyFaulty is QueryKey over a lossy channel; see QueryFaulty.
func (p *Program) QueryKeyFaulty(arrival int, key int64, pw Power, fc FaultConfig) (Metrics, bool, error) {
	if !p.t.Keyed() {
		return Metrics{}, false, fmt.Errorf("sim: tree is not keyed")
	}
	m, found, err := p.run(arrival, fc, func(b Bucket) (tree.ID, bool) {
		if b.Node != tree.None && p.t.IsData(b.Node) {
			k, _ := p.t.Key(b.Node)
			return tree.None, k == key
		}
		for _, c := range b.Children {
			lo, hi, _ := p.t.KeyRange(c.Target)
			if key >= lo && key <= hi {
				return c.Target, false
			}
		}
		return tree.None, false
	}, pw)
	return m, found, err
}

// readAt reads the bucket transmitted on ch at the absolute slot, under
// the fault model: a lost or corrupt transmission burns the wake-up
// (TuningTime, Retries) and the client re-tunes to the same cycle slot
// one full cycle later, until the per-query budget runs out. It returns
// the slot of the successful read. This is the recovery protocol the
// netcast client implements over real sockets, kept in lockstep so the
// two paths report byte-identical metrics under the same seed.
func (p *Program) readAt(m *Metrics, fc FaultConfig, ch, slot int) (int, Bucket, error) {
	for {
		m.TuningTime++
		switch fc.Model.At(ch, slot) {
		case fault.OK, fault.Stall:
			// Stall delays wall-clock delivery, never the slot clock.
			return slot, p.buckets[ch-1][p.slotInCycle(slot)-1], nil
		default: // Drop, Corrupt: nothing usable was heard this slot.
			m.Retries++
			if m.Retries+m.Restarts+m.Failovers+m.Reconnects > fc.budget() {
				return 0, Bucket{}, fmt.Errorf("sim: channel %d slot %d: %w after %d redundant wake-ups",
					ch, slot, fault.ErrRetryBudget, m.Retries-1)
			}
			slot += p.cycleLen
		}
	}
}

// run drives the client: probe channel 1, synchronize (or start from a
// root copy), then follow pointers chosen by descend, which returns the
// next child to chase or done=true when the current bucket is the answer.
func (p *Program) run(arrival int, fc FaultConfig, descend func(Bucket) (next tree.ID, done bool), pw Power) (Metrics, bool, error) {
	var m Metrics
	// The initial probe read; on a lossy channel it may take several
	// cycles to hear any channel-1 bucket at all.
	now, b, err := p.readAt(&m, fc, 1, arrival)
	if err != nil {
		return m, false, err
	}

	descentStart := now
	if !(b.RootCopy || (b.Node != tree.None && b.Node == p.t.Root())) {
		// Doze until the next cycle start, then read the root bucket.
		if now, b, err = p.readAt(&m, fc, 1, now+b.NextCycle); err != nil {
			return m, false, err
		}
		descentStart = now
		if !(b.RootCopy || b.Node == p.t.Root()) {
			return m, false, fmt.Errorf("%w (got %v)", ErrMissingRoot, b.Node)
		}
	}
	// ProbeWait is everything before the root bucket the descent started
	// from — including whole cycles lost to unreadable probes.
	m.ProbeWait = descentStart - arrival

	for hops := 0; hops <= p.t.NumNodes()+1; hops++ {
		next, done := descend(b)
		if done {
			m.DataWait = now - descentStart + 1
			m.finish(pw)
			return m, true, nil
		}
		if next == tree.None {
			// Negative lookup: no child covers the request.
			m.DataWait = now - descentStart + 1
			m.finish(pw)
			return m, false, nil
		}
		var ptr *Pointer
		for i := range b.Children {
			if b.Children[i].Target == next {
				ptr = &b.Children[i]
				break
			}
		}
		if ptr == nil {
			return m, false, fmt.Errorf("%w: bucket %v has no pointer to %s", ErrBrokenPointer, b.Node, p.t.Label(next))
		}
		if now, b, err = p.readAt(&m, fc, ptr.Channel, now+ptr.Offset); err != nil {
			return m, false, err
		}
		if b.Node != next {
			return m, false, fmt.Errorf("%w: pointer to %s found %v at channel %d slot %d",
				ErrBrokenPointer, p.t.Label(next), b.Node, ptr.Channel, p.slotInCycle(now))
		}
	}
	return m, false, fmt.Errorf("sim: descent did not terminate")
}

// Summary aggregates weighted-average metrics over arrivals and targets.
type Summary struct {
	ProbeWait, DataWait, AccessTime, TuningTime, Energy float64
	// Retries is the expected number of redundant wake-ups per query
	// (zero on a perfect medium).
	Retries float64
	// Restarts is the expected number of epoch-swap descent restarts per
	// query (zero on a static broadcast).
	Restarts float64
	// Failovers is the expected number of channel failovers per query
	// (zero unless evaluated under an outage schedule).
	Failovers float64
	// Reconnects is the expected number of station re-dial attempts per
	// query (zero unless evaluated under a downtime schedule).
	Reconnects float64
	// Conflicts is the expected number of batch retrieval conflicts per
	// query — wanted nodes overlapping on the air (zero for single-key
	// workloads).
	Conflicts float64
	// ExtraCycles is the expected number of whole cycles lost to those
	// conflicts per query (zero for single-key workloads).
	ExtraCycles float64
}

// Evaluate computes the exact expected metrics of the program: a query
// arrives uniformly at every cycle phase and requests data node D with
// probability W(D)/ΣW. All averages are exact sums, not samples.
func Evaluate(p *Program, pw Power) (Summary, error) {
	return EvaluateFaulty(p, pw, FaultConfig{})
}

// EvaluateFaulty is Evaluate over one seeded realization of the lossy
// channel: the same weighted average, with every query paying the
// deterministic per-slot losses of fc.Model. Averaging over several model
// seeds approximates the expectation over channel noise.
func EvaluateFaulty(p *Program, pw Power, fc FaultConfig) (Summary, error) {
	var s Summary
	total := p.t.TotalWeight()
	if total == 0 {
		return s, fmt.Errorf("sim: zero total weight")
	}
	phases := float64(p.cycleLen)
	for _, d := range p.t.DataIDs() {
		w := p.t.Weight(d) / total
		for a := 0; a < p.cycleLen; a++ {
			m, err := p.QueryFaulty(a, d, pw, fc)
			if err != nil {
				return s, err
			}
			s.ProbeWait += w * float64(m.ProbeWait) / phases
			s.DataWait += w * float64(m.DataWait) / phases
			s.AccessTime += w * float64(m.AccessTime) / phases
			s.TuningTime += w * float64(m.TuningTime) / phases
			s.Retries += w * float64(m.Retries) / phases
			s.Restarts += w * float64(m.Restarts) / phases
			s.Failovers += w * float64(m.Failovers) / phases
			s.Reconnects += w * float64(m.Reconnects) / phases
			s.Energy += w * m.Energy / phases
		}
	}
	return s, nil
}

// ItemMetrics is one data item's exact expected client cost.
type ItemMetrics struct {
	Label                                    string
	Key                                      int64
	Weight                                   float64
	DataWait, AccessTime, TuningTime, Energy float64
}

// EvaluatePerItem computes each data item's exact expected metrics over a
// uniform arrival phase — the operator's view of which items suffer the
// worst latency under the current allocation. Items are returned in
// catalog (preorder) order.
func EvaluatePerItem(p *Program, pw Power) ([]ItemMetrics, error) {
	phases := float64(p.cycleLen)
	out := make([]ItemMetrics, 0, p.t.NumData())
	for _, d := range p.t.DataIDs() {
		im := ItemMetrics{Label: p.t.Label(d), Weight: p.t.Weight(d)}
		if k, ok := p.t.Key(d); ok {
			im.Key = k
		}
		for a := 0; a < p.cycleLen; a++ {
			m, err := p.Query(a, d, pw)
			if err != nil {
				return nil, err
			}
			im.DataWait += float64(m.DataWait) / phases
			im.AccessTime += float64(m.AccessTime) / phases
			im.TuningTime += float64(m.TuningTime) / phases
			im.Energy += m.Energy / phases
		}
		out = append(out, im)
	}
	return out, nil
}
