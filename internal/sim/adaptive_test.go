package sim

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/alphatree"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stats"
)

// keyedProgramOpt is keyedProgram with explicit compile options and a
// key offset, so two epochs can carry different catalogs.
func keyedProgramOpt(t *testing.T, n, k int, seed, keyBase int64, opt Options) *Program {
	t.Helper()
	rng := stats.NewRNG(seed)
	items := make([]alphatree.Item, n)
	for i := range items {
		items[i] = alphatree.Item{
			Label:  string(rune('a' + i%26)),
			Key:    keyBase + int64(i+1),
			Weight: float64(1 + rng.Intn(100)),
		}
	}
	tr, err := alphatree.HuTucker(items)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(tr, core.Config{Channels: k})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(sol.Alloc, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTimelineAppend(t *testing.T) {
	p1 := keyedProgram(t, 10, 2, 1)
	p2 := keyedProgram(t, 10, 2, 2)
	L := p1.CycleLen()

	tl, err := NewTimeline(p1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Staging mid-cycle lands the swap at the next cycle boundary...
	start, err := tl.Append(p2, 2, 2*L+3)
	if err != nil {
		t.Fatal(err)
	}
	if start != 3*L {
		t.Fatalf("swap at %d, want %d", start, 3*L)
	}
	// ...and staging exactly at a boundary swaps there.
	p3 := keyedProgram(t, 10, 2, 3)
	L2 := p2.CycleLen()
	start2, err := tl.Append(p3, 3, 3*L+2*L2)
	if err != nil {
		t.Fatal(err)
	}
	if start2 != 3*L+2*L2 {
		t.Fatalf("swap at %d, want %d", start2, 3*L+2*L2)
	}

	if e := tl.EntryAt(3*L - 1); e.Epoch != 1 {
		t.Fatalf("slot %d in epoch %d, want 1", 3*L-1, e.Epoch)
	}
	if e := tl.EntryAt(3 * L); e.Epoch != 2 {
		t.Fatalf("slot %d in epoch %d, want 2", 3*L, e.Epoch)
	}
	if e, cs := tl.CycleSlot(3*L + 1); e.Epoch != 2 || cs != 2 {
		t.Fatalf("CycleSlot = epoch %d slot %d, want 2/2", e.Epoch, cs)
	}

	// Invalid appends are rejected.
	if _, err := tl.Append(keyedProgram(t, 10, 1, 4), 4, 10*L); err == nil {
		t.Error("want error for channel-count change")
	}
	if _, err := tl.Append(keyedProgram(t, 10, 2, 5), 3, 10*L); err == nil {
		t.Error("want error for non-advancing epoch")
	}
	if _, err := tl.Append(keyedProgram(t, 10, 2, 6), 9, start2); err == nil {
		t.Error("want error for staging before the predecessor aired")
	}
}

// TestQuerySwitchStaticMatchesQueryKey: on a single-epoch timeline the
// adaptive client pays exactly what the static client pays, including
// under faults — the restart machinery is free when no swap happens.
func TestQuerySwitchStaticMatchesQueryKey(t *testing.T) {
	p := keyedProgram(t, 12, 2, 7)
	tl, err := NewTimeline(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	fc := FaultConfig{Model: fault.Model{Seed: 99, Drop: 0.1, Corrupt: 0.05}}
	for a := 0; a < p.CycleLen(); a++ {
		for key := int64(0); key <= 13; key++ {
			got, gFound, gErr := tl.QuerySwitch(a, key, testPower, fc)
			want, wFound, wErr := p.QueryKeyFaulty(a, key, testPower, fc)
			if (gErr == nil) != (wErr == nil) {
				t.Fatalf("arrival %d key %d: err %v vs %v", a, key, gErr, wErr)
			}
			if gErr != nil {
				continue
			}
			if got != want || gFound != wFound {
				t.Fatalf("arrival %d key %d: %+v/%v vs %+v/%v", a, key, got, gFound, want, wFound)
			}
			if got.Restarts != 0 {
				t.Fatalf("arrival %d key %d: %d restarts on a static timeline", a, key, got.Restarts)
			}
		}
	}
}

// TestQuerySwitchAcrossSwap: epoch 2 carries a disjoint catalog; lookups
// for new keys launched before the swap succeed (restarting if the
// descent straddled the boundary), and the sync path adopts the new
// epoch silently.
func TestQuerySwitchAcrossSwap(t *testing.T) {
	// 3 channels leave channel 1 sparse, so root copies (with pointers
	// wrapping into the next cycle — the buckets that straddle a swap)
	// actually exist.
	p1 := keyedProgramOpt(t, 10, 3, 1, 0, Options{FillWithRootCopies: true})
	p2 := keyedProgramOpt(t, 10, 3, 2, 100, Options{FillWithRootCopies: true})
	tl, err := NewTimeline(p1, 1)
	if err != nil {
		t.Fatal(err)
	}
	swap, err := tl.Append(p2, 2, 2*p1.CycleLen()+1)
	if err != nil {
		t.Fatal(err)
	}

	restarts := 0
	for a := 0; a < swap+2*p2.CycleLen(); a++ {
		for key := int64(1); key <= 10; key++ {
			// Old-catalog keys: found iff the descent completed in epoch 1.
			m, found, err := tl.QuerySwitch(a, key, testPower, FaultConfig{})
			if err != nil {
				t.Fatalf("arrival %d key %d: %v", a, key, err)
			}
			restarts += m.Restarts
			if m.AccessTime != m.ProbeWait+m.DataWait {
				t.Fatalf("arrival %d: access %d != %d+%d", a, m.AccessTime, m.ProbeWait, m.DataWait)
			}
			if m.Restarts > 0 && found {
				t.Fatalf("arrival %d key %d: restarted into epoch 2 yet found a retired key", a, key)
			}
			if a >= swap && found {
				t.Fatalf("arrival %d (after swap): stale key %d found", a, key)
			}
		}
		// New-catalog keys are served by every descent landing in epoch 2.
		m, found, err := tl.QuerySwitch(a, 105, testPower, FaultConfig{})
		if err != nil {
			t.Fatalf("arrival %d: %v", a, err)
		}
		if a >= swap && !found {
			t.Fatalf("arrival %d (after swap): key 105 not found", a)
		}
		if found && a+m.AccessTime <= swap {
			t.Fatalf("arrival %d: found a key that was never on the air yet", a)
		}
	}
	if restarts == 0 {
		t.Fatal("no descent ever restarted across the swap")
	}
}

// TestQuerySwitchRestartBudget: with a swap landing every single cycle
// and a lossy channel, fault retries keep bumping reads across epoch
// boundaries (the swap-racing-retry case) and the restart counter shares
// — and exhausts — the retry budget.
func TestQuerySwitchRestartBudget(t *testing.T) {
	p := keyedProgramOpt(t, 10, 3, 1, 0, Options{FillWithRootCopies: true})
	L := p.CycleLen()
	tl, err := NewTimeline(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 60; i++ {
		if _, err := tl.Append(p, uint32(i+1), i*L); err != nil {
			t.Fatal(err)
		}
	}
	fc := FaultConfig{Model: fault.Model{Seed: 5, Drop: 0.25}, MaxRetries: 2}
	sawBudget, sawRestart := false, false
	for a := 0; a < L; a++ {
		for key := int64(1); key <= 10; key++ {
			m, _, err := tl.QuerySwitch(a, key, testPower, fc)
			if err != nil {
				if !errors.Is(err, fault.ErrRetryBudget) {
					t.Fatalf("arrival %d key %d: %v", a, key, err)
				}
				sawBudget = true
				continue
			}
			if m.Restarts > 0 {
				sawRestart = true
			}
			if m.Retries+m.Restarts > fc.budget() {
				t.Fatalf("arrival %d key %d: budget overrun %d+%d", a, key, m.Retries, m.Restarts)
			}
		}
	}
	if !sawRestart {
		t.Error("no query restarted")
	}
	if !sawBudget {
		t.Error("no query exhausted the restart budget")
	}
}

// TestQueryRangeSwitchAcrossSwap: a scan that straddles the swap drops
// its partial result set and re-scans the new epoch, so the final key
// set is exact — no duplicates, no stale keys — for every arrival.
func TestQueryRangeSwitchAcrossSwap(t *testing.T) {
	p1 := keyedProgram(t, 10, 2, 1)
	p2 := keyedProgram(t, 10, 2, 8)
	tl, err := NewTimeline(p1, 1)
	if err != nil {
		t.Fatal(err)
	}
	swap, err := tl.Append(p2, 2, p1.CycleLen()+1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 4, 5, 6, 7}
	restarts := 0
	for a := 0; a < swap+p2.CycleLen(); a++ {
		res, err := tl.QueryRangeSwitch(a, 3, 7, testPower, FaultConfig{})
		if err != nil {
			t.Fatalf("arrival %d: %v", a, err)
		}
		restarts += res.Metrics.Restarts
		sort.Slice(res.Keys, func(i, j int) bool { return res.Keys[i] < res.Keys[j] })
		if len(res.Keys) != len(want) {
			t.Fatalf("arrival %d: keys %v, want %v", a, res.Keys, want)
		}
		for i := range want {
			if res.Keys[i] != want[i] {
				t.Fatalf("arrival %d: keys %v, want %v", a, res.Keys, want)
			}
		}
	}
	if restarts == 0 {
		t.Fatal("no scan ever restarted across the swap")
	}
}

// TestEvaluateAdaptiveStaticAnchor: over one cycle of a single-epoch
// timeline with demand equal to the tree weights, the adaptive
// evaluation reproduces the static Evaluate exactly, with hit rate 1.
func TestEvaluateAdaptiveStaticAnchor(t *testing.T) {
	p := keyedProgram(t, 12, 2, 9)
	tl, err := NewTimeline(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Tree()
	var demand []Demand
	for _, d := range tr.DataIDs() {
		k, _ := tr.Key(d)
		demand = append(demand, Demand{Key: k, Weight: tr.Weight(d)})
	}
	got, hit, err := EvaluateAdaptive(tl, 0, p.CycleLen(), demand, testPower, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(p, testPower)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hit-1) > 1e-9 {
		t.Fatalf("hit rate %v, want 1", hit)
	}
	for name, pair := range map[string][2]float64{
		"probe":  {got.ProbeWait, want.ProbeWait},
		"data":   {got.DataWait, want.DataWait},
		"access": {got.AccessTime, want.AccessTime},
		"tuning": {got.TuningTime, want.TuningTime},
		"energy": {got.Energy, want.Energy},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9 {
			t.Errorf("%s: %v != %v", name, pair[0], pair[1])
		}
	}
	if got.Restarts != 0 || got.Retries != 0 {
		t.Errorf("static anchor has restarts %v retries %v", got.Restarts, got.Retries)
	}

	// Demand for an absent key drags the hit rate below 1.
	_, hit2, err := EvaluateAdaptive(tl, 0, p.CycleLen(),
		append(demand, Demand{Key: 999, Weight: 50}), testPower, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if hit2 >= 1 {
		t.Fatalf("hit rate %v with absent-key demand", hit2)
	}
}
