package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fault"
)

func TestRemapValidation(t *testing.T) {
	p := keyedProgram(t, 10, 2, 1)
	cases := []struct {
		phys  []int
		width int
	}{
		{[]int{1}, 2},       // too few physical channels
		{[]int{1, 2, 3}, 3}, // too many
		{[]int{1, 2}, 1},    // width below channel count
		{[]int{0, 2}, 2},    // channel below 1
		{[]int{1, 5}, 4},    // channel above width
		{[]int{2, 1}, 2},    // not increasing
		{[]int{2, 2}, 3},    // duplicate
	}
	for _, c := range cases {
		if _, err := p.Remap(c.phys, c.width); err == nil {
			t.Errorf("Remap(%v, %d) succeeded", c.phys, c.width)
		}
	}
}

// TestRemapIdentity: remapping onto the identity placement reproduces
// the program bucket for bucket.
func TestRemapIdentity(t *testing.T) {
	p := keyedProgram(t, 12, 2, 2)
	q, err := p.Remap([]int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Channels() != 2 || q.CycleLen() != p.CycleLen() || q.RootChannel() != 1 {
		t.Fatalf("identity remap shape: %d channels, cycle %d, root %d",
			q.Channels(), q.CycleLen(), q.RootChannel())
	}
	for ch := 1; ch <= 2; ch++ {
		for s := 1; s <= p.CycleLen(); s++ {
			a, b := p.BucketAt(ch, s), q.BucketAt(ch, s)
			if a.Node != b.Node || a.NextCycle != b.NextCycle || a.RootCopy != b.RootCopy ||
				len(a.Children) != len(b.Children) {
				t.Fatalf("bucket (%d,%d) differs: %+v vs %+v", ch, s, a, b)
			}
			for i := range a.Children {
				if a.Children[i] != b.Children[i] {
					t.Fatalf("bucket (%d,%d) child %d differs", ch, s, i)
				}
			}
		}
	}
}

// TestRemapDiscovery: a program remapped away from channel 1 is still
// fully queryable through the outage protocol — the probe on channel 1
// reads a filler bucket whose frame advertises the real root channel,
// and the client re-tunes there.
func TestRemapDiscovery(t *testing.T) {
	base := keyedProgram(t, 12, 1, 3)
	p, err := base.Remap([]int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.RootChannel() != 2 {
		t.Fatalf("root channel %d, want 2", p.RootChannel())
	}
	for ch := 1; ch <= 2; ch++ {
		for s := 1; s <= p.CycleLen(); s++ {
			if b := p.BucketAt(ch, s); b.NextCycle != p.CycleLen()-s+1 {
				t.Fatalf("bucket (%d,%d) NextCycle %d", ch, s, b.NextCycle)
			}
		}
	}
	var oc OutageConfig
	for a := 0; a < p.CycleLen(); a++ {
		for key := int64(0); key <= 13; key++ {
			m, found, err := p.QueryOutage(a, key, testPower, oc)
			if err != nil {
				t.Fatalf("arrival %d key %d: %v", a, key, err)
			}
			_, wantFound, err := base.QueryKey(a, key, testPower)
			if err != nil {
				t.Fatal(err)
			}
			if found != wantFound {
				t.Fatalf("arrival %d key %d: found %v, want %v", a, key, found, wantFound)
			}
			if m.Failovers != 0 || m.Retries != 0 {
				t.Fatalf("arrival %d key %d: failovers/retries on a perfect medium: %+v", a, key, m)
			}
		}
	}
}

// TestQueryOutageDisabledMatchesQuerySwitch: with failover disabled and
// no outage schedule the outage client is byte-identical to the adaptive
// client under any lossy model — the failover machinery costs nothing
// when off.
func TestQueryOutageDisabledMatchesQuerySwitch(t *testing.T) {
	p := keyedProgram(t, 12, 2, 7)
	tl, err := NewTimeline(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	fc := FaultConfig{Model: fault.Model{Seed: 99, Drop: 0.1, Corrupt: 0.05}}
	oc := OutageConfig{Model: fc.Model, DeadAir: -1}
	for a := 0; a < p.CycleLen(); a++ {
		for key := int64(0); key <= 13; key++ {
			got, gFound, gErr := tl.QueryOutage(a, key, testPower, oc)
			want, wFound, wErr := tl.QuerySwitch(a, key, testPower, fc)
			if (gErr == nil) != (wErr == nil) {
				t.Fatalf("arrival %d key %d: err %v vs %v", a, key, gErr, wErr)
			}
			if gErr != nil {
				continue
			}
			if got != want || gFound != wFound {
				t.Fatalf("arrival %d key %d: %+v/%v vs %+v/%v", a, key, got, gFound, want, wFound)
			}
		}
	}
}

// TestQueryOutageRidesOutShortWindow: an outage shorter than DeadAir
// cycles is absorbed by ordinary retries; one spanning more trips the
// dead-air detector, costs failovers, and still completes once the
// channel returns.
func TestQueryOutageRidesOutShortWindow(t *testing.T) {
	p := keyedProgram(t, 12, 2, 11)
	L := p.CycleLen()

	short := OutageConfig{Outages: fault.Outages{{Channel: 1, StartSlot: 0, EndSlot: 2 * L}}}
	m, found, err := p.QueryOutage(0, 5, testPower, short)
	if err != nil {
		t.Fatal(err)
	}
	if !found || m.Failovers != 0 || m.Retries == 0 {
		t.Fatalf("short window: %+v found=%v, want retries only", m, found)
	}

	long := OutageConfig{Outages: fault.Outages{{Channel: 1, StartSlot: 0, EndSlot: 3*L + 1}}}
	m, found, err = p.QueryOutage(0, 5, testPower, long)
	if err != nil {
		t.Fatal(err)
	}
	if !found || m.Failovers == 0 {
		t.Fatalf("long window: %+v found=%v, want at least one failover", m, found)
	}

	// A starved budget turns the same window into a terminal failure.
	starved := long
	starved.MaxRetries = 3
	if _, _, err := p.QueryOutage(0, 5, testPower, starved); !errors.Is(err, fault.ErrRetryBudget) {
		t.Fatalf("starved budget: err %v, want ErrRetryBudget", err)
	}
}

// TestQueryOutageFailsOverToReplannedEpoch: after the watchdog detects
// the outage the tower swaps in a survivor replan; a client arriving
// mid-outage pays exactly one failover to discover the new root channel
// and completes its descent entirely on the surviving channel.
func TestQueryOutageFailsOverToReplannedEpoch(t *testing.T) {
	p1 := keyedProgram(t, 12, 2, 13)
	L := p1.CycleLen()
	survivor, err := keyedProgram(t, 12, 1, 13).Remap([]int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}

	outs := fault.Outages{{Channel: 1, StartSlot: L, EndSlot: 100 * L}}
	const watchdog = 3
	events := outs.Detections(2, watchdog, 10*L)
	if len(events) != 1 || events[0].Slot != L+watchdog || len(events[0].Live) != 1 || events[0].Live[0] != 2 {
		t.Fatalf("detections = %+v", events)
	}

	tl, err := NewTimeline(p1, 1)
	if err != nil {
		t.Fatal(err)
	}
	swap, err := tl.Append(survivor, 2, events[0].Slot+1)
	if err != nil {
		t.Fatal(err)
	}
	oc := OutageConfig{Outages: outs}

	// Arrive well after the swap: probe channel 1 (dark), fail over once,
	// then run entirely on channel 2.
	m, found, err := tl.QueryOutage(swap+L, 5, testPower, oc)
	if err != nil {
		t.Fatal(err)
	}
	if !found || m.Failovers != 1 {
		t.Fatalf("post-swap query: %+v found=%v, want exactly one failover", m, found)
	}

	// Arrive before the outage: the whole window [0, L) must still
	// complete — early arrivals descend epoch 1 before slot L, later ones
	// pay retries/failovers and land on epoch 2.
	for a := 0; a < L; a++ {
		if _, _, err := tl.QueryOutage(a, 5, testPower, oc); err != nil {
			t.Fatalf("arrival %d: %v", a, err)
		}
	}
}

// TestEvaluateOutageNoOutagesMatchesAdaptive: with an empty schedule and
// failover disabled the outage evaluator reproduces EvaluateAdaptive
// exactly, with availability 1.
func TestEvaluateOutageNoOutagesMatchesAdaptive(t *testing.T) {
	p := keyedProgram(t, 12, 2, 17)
	tl, err := NewTimeline(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	var demand []Demand
	tr := p.Tree()
	for _, d := range tr.DataIDs() {
		k, _ := tr.Key(d)
		demand = append(demand, Demand{Key: k, Weight: tr.Weight(d)})
	}
	fc := FaultConfig{Model: fault.Model{Seed: 5, Drop: 0.05}}
	oc := OutageConfig{Model: fc.Model, DeadAir: -1}
	L := p.CycleLen()

	want, wantHits, err := EvaluateAdaptive(tl, 0, L, demand, testPower, fc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateOutageAdaptive(tl, 0, L, demand, testPower, oc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Availability != 1 {
		t.Fatalf("availability %v, want 1", got.Availability)
	}
	if math.Abs(got.HitRate-wantHits) > 1e-9 {
		t.Fatalf("hit rate %v, want %v", got.HitRate, wantHits)
	}
	if math.Abs(got.Summary.AccessTime-want.AccessTime) > 1e-9 ||
		math.Abs(got.Summary.TuningTime-want.TuningTime) > 1e-9 ||
		math.Abs(got.Summary.Retries-want.Retries) > 1e-9 {
		t.Fatalf("summary %+v, want %+v", got.Summary, want)
	}
}

// TestEvaluateOutageAvailability: a root-channel outage long enough to
// exhaust starved budgets shows up as availability < 1, not as an
// evaluator error, and the failed mass is excluded from the cost means.
func TestEvaluateOutageAvailability(t *testing.T) {
	p := keyedProgram(t, 12, 2, 19)
	L := p.CycleLen()
	oc := OutageConfig{
		Outages:    fault.Outages{{Channel: 1, StartSlot: 0, EndSlot: 40 * L}},
		MaxRetries: 6,
	}
	r, err := EvaluateOutage(p, 0, L, testPower, oc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Availability >= 1 || r.Availability < 0 {
		t.Fatalf("availability %v, want < 1 under a 40-cycle root outage", r.Availability)
	}

	clear, err := EvaluateOutage(p, 41*L, 42*L, testPower, oc)
	if err != nil {
		t.Fatal(err)
	}
	if clear.Availability != 1 || clear.Summary.Failovers != 0 {
		t.Fatalf("post-outage window: %+v, want full availability", clear)
	}
}
