package sim

import (
	"errors"
	"testing"

	"repro/internal/fault"
)

// faultPw is the power model used throughout the lossy-channel tests.
var faultPw = Power{Active: 1, Doze: 0.05}

func TestQueryFaultyZeroModelMatchesQuery(t *testing.T) {
	p := keyedProgram(t, 8, 2, 1)
	for _, d := range p.Tree().DataIDs() {
		for a := 0; a < p.CycleLen(); a++ {
			want, err := p.Query(a, d, faultPw)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.QueryFaulty(a, d, faultPw, FaultConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("zero model diverged: %+v != %+v", got, want)
			}
			if got.Retries != 0 {
				t.Fatalf("retries on a perfect channel: %+v", got)
			}
		}
	}
}

func TestQueryFaultyDeterministic(t *testing.T) {
	p := keyedProgram(t, 8, 2, 2)
	fc := FaultConfig{Model: fault.Model{Seed: 9, Drop: 0.2, Corrupt: 0.1}}
	d := p.Tree().DataIDs()[3]
	a, err := p.QueryFaulty(1, d, faultPw, fc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.QueryFaulty(1, d, faultPw, fc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v != %+v", a, b)
	}
}

// TestQueryFaultyDegradesMonotonically: a lossy run never beats the
// perfect run for the same arrival and target, and every retry costs
// whole cycles of access time.
func TestQueryFaultyDegradesMonotonically(t *testing.T) {
	p := keyedProgram(t, 9, 2, 3)
	fc := FaultConfig{Model: fault.Model{Seed: 4, Drop: 0.25, Corrupt: 0.1}}
	totalRetries := 0
	for _, d := range p.Tree().DataIDs() {
		for a := 0; a < p.CycleLen(); a++ {
			perfect, err := p.Query(a, d, faultPw)
			if err != nil {
				t.Fatal(err)
			}
			lossy, err := p.QueryFaulty(a, d, faultPw, fc)
			if err != nil {
				t.Fatal(err)
			}
			totalRetries += lossy.Retries
			if lossy.AccessTime < perfect.AccessTime || lossy.TuningTime < perfect.TuningTime {
				t.Fatalf("lossy run beat the perfect one: %+v < %+v", lossy, perfect)
			}
			if lossy.AccessTime != lossy.ProbeWait+lossy.DataWait {
				t.Fatalf("metrics inconsistent: %+v", lossy)
			}
			if lossy.Retries == 0 && lossy != perfect {
				t.Fatalf("no retries but metrics diverged: %+v != %+v", lossy, perfect)
			}
			// Each redundant wake-up burns exactly one tuned read.
			if lossy.TuningTime-perfect.TuningTime != lossy.Retries {
				t.Fatalf("tuning time off: lossy %+v perfect %+v", lossy, perfect)
			}
		}
	}
	if totalRetries == 0 {
		t.Fatal("25%+10% loss produced no retries at all")
	}
}

func TestQueryFaultyBudgetExhausted(t *testing.T) {
	p := keyedProgram(t, 6, 1, 5)
	fc := FaultConfig{Model: fault.Model{Seed: 1, Drop: 1}, MaxRetries: 3}
	_, err := p.QueryFaulty(0, p.Tree().DataIDs()[0], faultPw, fc)
	if !errors.Is(err, fault.ErrRetryBudget) {
		t.Fatalf("want ErrRetryBudget, got %v", err)
	}
}

func TestEvaluateFaulty(t *testing.T) {
	p := keyedProgram(t, 8, 2, 6)
	perfect, err := Evaluate(p, faultPw)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := EvaluateFaulty(p, faultPw, FaultConfig{
		Model: fault.Model{Seed: 2, Drop: 0.15, Corrupt: 0.15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Retries <= 0 {
		t.Fatalf("no expected retries under 30%% loss: %+v", lossy)
	}
	if lossy.AccessTime <= perfect.AccessTime {
		t.Fatalf("loss did not degrade access time: %v <= %v", lossy.AccessTime, perfect.AccessTime)
	}
	if perfect.Retries != 0 {
		t.Fatalf("perfect channel reported retries: %+v", perfect)
	}
}

// TestQueryRangeFaultyCompleteness: loss delays a range scan but never
// loses results — the retrieved key set matches the perfect scan.
func TestQueryRangeFaultyCompleteness(t *testing.T) {
	p := keyedProgram(t, 10, 2, 7)
	fc := FaultConfig{Model: fault.Model{Seed: 3, Drop: 0.2}, MaxRetries: 256}
	perfect, err := p.QueryRange(1, 2, 9, faultPw)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := p.QueryRangeFaulty(1, 2, 9, faultPw, fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(lossy.Keys) != len(perfect.Keys) {
		t.Fatalf("lossy scan lost keys: %v vs %v", lossy.Keys, perfect.Keys)
	}
	seen := map[int64]bool{}
	for _, k := range lossy.Keys {
		seen[k] = true
	}
	for _, k := range perfect.Keys {
		if !seen[k] {
			t.Fatalf("key %d missing from lossy scan %v", k, lossy.Keys)
		}
	}
	if lossy.Metrics.AccessTime < perfect.Metrics.AccessTime {
		t.Fatalf("lossy scan finished early: %+v vs %+v", lossy.Metrics, perfect.Metrics)
	}
}

func TestQueryRangeFaultyBudget(t *testing.T) {
	p := keyedProgram(t, 6, 1, 8)
	fc := FaultConfig{Model: fault.Model{Seed: 1, Drop: 1}, MaxRetries: 4}
	_, err := p.QueryRangeFaulty(0, 1, 6, faultPw, fc)
	if !errors.Is(err, fault.ErrRetryBudget) {
		t.Fatalf("want ErrRetryBudget, got %v", err)
	}
}
