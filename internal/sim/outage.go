package sim

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/tree"
)

// This file is the analytic twin of channel-outage tolerance: queries run
// against a timeline whose channels go dark for whole windows of absolute
// slots, and the client protocol — declare a channel dead after DeadAir
// consecutive unusable reads, fail over to a surviving channel's index,
// restart the descent — matches the netcast client byte for byte under
// identical (seed, outage schedule). Failovers share the unified retry
// budget: Retries + Restarts + Failovers ≤ MaxRetries, and exhausting it
// is terminal with fault.ErrRetryBudget.

// DefaultDeadAir is the number of consecutive unusable reads on one
// channel after which a client declares the channel dead, when
// OutageConfig does not set a threshold. Three reads separate a dead
// channel from an unlucky run on a merely lossy one at any drop rate the
// experiments model.
const DefaultDeadAir = 3

// MaxProbeRedirects bounds how many cycle-start jumps a probing client
// will chase before concluding the timeline carries no reachable root.
const MaxProbeRedirects = 8

// OutageConfig subjects a query to channel outages layered over a lossy
// channel: a slot inside an outage window is dead air regardless of what
// the per-slot model says, and the client's failover protocol is armed.
type OutageConfig struct {
	// Model is the seeded per-slot fault distribution composing with the
	// outage schedule; the zero Model is a perfect medium between outages.
	Model fault.Model
	// Outages is the channel-outage schedule.
	Outages fault.Outages
	// MaxRetries bounds Retries+Restarts+Failovers per query
	// (0 = DefaultMaxRetries).
	MaxRetries int
	// DeadAir is the consecutive-unusable-read threshold for declaring a
	// channel dead (0 = DefaultDeadAir, negative = failover disabled).
	DeadAir int
}

func (oc OutageConfig) budget() int {
	return FaultConfig{MaxRetries: oc.MaxRetries}.budget()
}

func (oc OutageConfig) deadAir() int {
	if oc.DeadAir == 0 {
		return DefaultDeadAir
	}
	if oc.DeadAir < 0 {
		return 0
	}
	return oc.DeadAir
}

func (oc OutageConfig) faultConfig() FaultConfig {
	return FaultConfig{Model: oc.Model, MaxRetries: oc.MaxRetries}
}

// readOutage reads (ch, slot) under the composed outage+fault model. An
// unusable slot — dark or lost or corrupt — charges a retry and re-tunes
// to the same cycle slot one cycle later, exactly like readAt; but after
// deadAir consecutive unusable reads the client gives up on the channel
// instead, returning dead == true with the slot of the last failed read
// so the caller can fail over.
func (tl *Timeline) readOutage(m *Metrics, oc OutageConfig, ch, slot int) (now int, e Entry, b Bucket, dead bool, err error) {
	deadAir := oc.deadAir()
	run := 0
	for {
		m.TuningTime++
		if !oc.Outages.DarkAt(ch, slot) {
			switch oc.Model.At(ch, slot) {
			case fault.OK, fault.Stall:
				e, b = tl.bucketAt(ch, slot)
				return slot, e, b, false, nil
			}
		}
		m.Retries++
		if m.Retries+m.Restarts+m.Failovers+m.Reconnects > oc.budget() {
			return 0, Entry{}, Bucket{}, false, fmt.Errorf("sim: channel %d slot %d: %w after %d redundant wake-ups",
				ch, slot, fault.ErrRetryBudget, m.Retries-1)
		}
		run++
		if deadAir > 0 && run >= deadAir {
			return slot, Entry{}, Bucket{}, true, nil
		}
		slot += tl.EntryAt(slot).Prog.CycleLen()
	}
}

// failover charges one channel failover against the shared retry budget.
func (tl *Timeline) failover(m *Metrics, oc OutageConfig, ch, slot int) error {
	m.Failovers++
	if m.Retries+m.Restarts+m.Failovers+m.Reconnects > oc.budget() {
		return fmt.Errorf("sim: channel %d slot %d: %w after %d channel failovers",
			ch, slot, fault.ErrRetryBudget, m.Failovers-1)
	}
	return nil
}

// QueryOutage retrieves the data item with the given key from the
// timeline while channels suffer outages. The client keeps a belief
// about which channel carries the index root — initially channel 1,
// refreshed from the RootChannel stamp of every bucket it successfully
// reads — and probes there. Dead air during the probe or the descent
// triggers a failover: the client charges one failover against the
// shared budget, advances its root belief past the dead channel if that
// is the channel it lost, and re-probes from the next slot. Epoch swaps
// mid-descent restart exactly as in QuerySwitch.
func (tl *Timeline) QueryOutage(arrival int, key int64, pw Power, oc OutageConfig) (Metrics, bool, error) {
	var m Metrics
	if arrival < 0 {
		return m, false, fmt.Errorf("sim: negative arrival %d", arrival)
	}
	for _, e := range tl.entries {
		if !e.Prog.t.Keyed() {
			return m, false, fmt.Errorf("sim: epoch %d tree is not keyed", e.Epoch)
		}
	}
	fc := oc.faultConfig()
	K := tl.entries[0].Prog.Channels()
	rootCh := 1
	probeAt := arrival

probe:
	for {
		// Probe the believed root channel and synchronize on a root bucket.
		now, e, b, dead, err := tl.readOutage(&m, oc, rootCh, probeAt)
		if err != nil {
			return m, false, err
		}
		if dead {
			if err := tl.failover(&m, oc, rootCh, now); err != nil {
				return m, false, err
			}
			rootCh = rootCh%K + 1
			probeAt = now + 1
			continue
		}
		rootCh = e.Prog.RootChannel()
		for redirects := 0; !isRoot(e, b); redirects++ {
			if redirects >= MaxProbeRedirects {
				return m, false, fmt.Errorf("%w after %d redirects (got %v)", ErrMissingRoot, redirects, b.Node)
			}
			step := b.NextCycle
			if step <= 0 {
				step = 1
			}
			if now, e, b, dead, err = tl.readOutage(&m, oc, rootCh, now+step); err != nil {
				return m, false, err
			}
			if dead {
				if err := tl.failover(&m, oc, rootCh, now); err != nil {
					return m, false, err
				}
				rootCh = rootCh%K + 1
				probeAt = now + 1
				continue probe
			}
			rootCh = e.Prog.RootChannel()
		}
		epoch := e.Epoch
		descentStart := now
		m.ProbeWait = descentStart - arrival

		restarted := false
		for hops := 0; hops <= e.Prog.t.NumNodes()+1; hops++ {
			// Epoch stamp first: across a swap the slot may hold anything.
			if e.Epoch != epoch {
				if err := tl.restart(&m, fc, rootCh, now); err != nil {
					return m, false, err
				}
				probeAt = now + 1
				restarted = true
				break
			}
			t := e.Prog.t
			if b.Node != tree.None && t.IsData(b.Node) {
				k, _ := t.Key(b.Node)
				m.DataWait = now - descentStart + 1
				m.finish(pw)
				return m, k == key, nil
			}
			var ptr *Pointer
			for i := range b.Children {
				lo, hi, _ := t.KeyRange(b.Children[i].Target)
				if key >= lo && key <= hi {
					ptr = &b.Children[i]
					break
				}
			}
			if ptr == nil {
				// Negative lookup: no child covers the key.
				m.DataWait = now - descentStart + 1
				m.finish(pw)
				return m, false, nil
			}
			var dead bool
			if now, e, b, dead, err = tl.readOutage(&m, oc, ptr.Channel, now+ptr.Offset); err != nil {
				return m, false, err
			}
			if dead {
				// A pointer target went dark mid-descent. The root belief only
				// moves when the root channel itself is the one that died.
				if err := tl.failover(&m, oc, ptr.Channel, now); err != nil {
					return m, false, err
				}
				if ptr.Channel == rootCh {
					rootCh = rootCh%K + 1
				}
				probeAt = now + 1
				continue probe
			}
			rootCh = e.Prog.RootChannel()
			if e.Epoch == epoch && b.Node != ptr.Target {
				return m, false, fmt.Errorf("%w: pointer to %s found %v at channel %d slot %d",
					ErrBrokenPointer, t.Label(ptr.Target), b.Node, ptr.Channel, now)
			}
		}
		if !restarted {
			return m, false, fmt.Errorf("sim: descent did not terminate")
		}
	}
}

// QueryOutage runs the outage protocol against a static program: the
// single-epoch timeline degenerate case.
func (p *Program) QueryOutage(arrival int, key int64, pw Power, oc OutageConfig) (Metrics, bool, error) {
	tl, err := NewTimeline(p, 0)
	if err != nil {
		return Metrics{}, false, err
	}
	return tl.QueryOutage(arrival, key, pw, oc)
}

// OutageReport is the outcome of an evaluation under channel outages.
// Queries that exhaust the retry budget are excluded from the cost
// averages — Summary is the conditional mean over completed queries —
// and surface in Availability instead.
type OutageReport struct {
	// Summary is the weighted-average cost of the queries that completed.
	Summary Summary
	// Availability is the weighted fraction of queries that completed
	// (did not end in fault.ErrRetryBudget).
	Availability float64
	// HitRate is the weighted fraction of completed queries that found
	// their key.
	HitRate float64
}

// EvaluateOutage computes the expected client cost of a static program
// under channel outages over the arrival window [lo, hi): a query
// arrives uniformly at every slot in the window and requests each data
// item with probability proportional to its weight. The window is in
// absolute slots because outages are absolute-time events — the same
// program costs differently before, during, and after a window.
func EvaluateOutage(p *Program, lo, hi int, pw Power, oc OutageConfig) (OutageReport, error) {
	tl, err := NewTimeline(p, 0)
	if err != nil {
		return OutageReport{}, err
	}
	if !p.t.Keyed() {
		return OutageReport{}, fmt.Errorf("sim: tree is not keyed")
	}
	var demand []Demand
	for _, d := range p.t.DataIDs() {
		k, ok := p.t.Key(d)
		if !ok {
			return OutageReport{}, fmt.Errorf("sim: data node %v has no key", d)
		}
		demand = append(demand, Demand{Key: k, Weight: p.t.Weight(d)})
	}
	return EvaluateOutageAdaptive(tl, lo, hi, demand, pw, oc)
}

// EvaluateOutageAdaptive computes the expected client cost of an
// adaptive timeline under channel outages over the arrival window
// [lo, hi) and the given demand; see EvaluateOutage. All averages are
// exact sums, not samples.
func EvaluateOutageAdaptive(tl *Timeline, lo, hi int, demand []Demand, pw Power, oc OutageConfig) (OutageReport, error) {
	var r OutageReport
	if lo < 0 || hi <= lo {
		return r, fmt.Errorf("sim: bad arrival window [%d, %d)", lo, hi)
	}
	var total float64
	for _, d := range demand {
		if d.Weight < 0 {
			return r, fmt.Errorf("sim: negative weight %v for key %d", d.Weight, d.Key)
		}
		total += d.Weight
	}
	if total == 0 {
		return r, fmt.Errorf("sim: zero total demand")
	}
	phases := float64(hi - lo)
	var completed, failed, hits float64
	for _, d := range demand {
		u := d.Weight / total / phases
		for a := lo; a < hi; a++ {
			m, found, err := tl.QueryOutage(a, d.Key, pw, oc)
			if errors.Is(err, fault.ErrRetryBudget) {
				failed += u
				continue
			}
			if err != nil {
				return r, fmt.Errorf("sim: key %d arrival %d: %w", d.Key, a, err)
			}
			completed += u
			r.Summary.ProbeWait += u * float64(m.ProbeWait)
			r.Summary.DataWait += u * float64(m.DataWait)
			r.Summary.AccessTime += u * float64(m.AccessTime)
			r.Summary.TuningTime += u * float64(m.TuningTime)
			r.Summary.Retries += u * float64(m.Retries)
			r.Summary.Restarts += u * float64(m.Restarts)
			r.Summary.Failovers += u * float64(m.Failovers)
			r.Summary.Reconnects += u * float64(m.Reconnects)
			r.Summary.Energy += u * m.Energy
			if found {
				hits += u
			}
		}
	}
	r.Availability = completed / (completed + failed)
	if completed > 0 {
		r.Summary.ProbeWait /= completed
		r.Summary.DataWait /= completed
		r.Summary.AccessTime /= completed
		r.Summary.TuningTime /= completed
		r.Summary.Retries /= completed
		r.Summary.Restarts /= completed
		r.Summary.Failovers /= completed
		r.Summary.Reconnects /= completed
		r.Summary.Energy /= completed
		r.HitRate = hits / completed
	}
	return r, nil
}
