package sim

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/pqueue"
	"repro/internal/tree"
)

// This file is the analytic twin of station crash-restart tolerance: the
// station itself dies at the start of each fault.Downtime window and
// warm-restarts from its checkpoint at the window's end, and the client
// protocol — observe the dropped socket, re-dial under the seeded
// jittered backoff, resume the lookup from the reconnect slot — matches
// the netcast client byte for byte under identical (seed, downtime
// schedule, backoff parameters). Reconnects share the unified retry
// budget: Retries + Restarts + Failovers + Reconnects ≤ MaxRetries, and
// exhausting it is terminal with fault.ErrRetryBudget.
//
// The twin never needs to know the checkpoint cadence: a warm restart
// resumes the same program at a cycle boundary it already aired, so the
// broadcast is phase-continuous across the crash and the slot arithmetic
// of a resumed session is identical to an uninterrupted tower's. The
// cadence only moves how many slots the restarted tower replays to
// nobody — wall-clock recovery cost, measured by experiment A12, not
// slot-domain client cost.

// RestartConfig subjects a query to station crashes layered over channel
// outages and a lossy medium, and arms the reconnect protocol.
type RestartConfig struct {
	// Model is the seeded per-slot fault distribution; the zero Model is
	// a perfect medium between failures.
	Model fault.Model
	// Outages is the channel-outage schedule, composing with crashes
	// exactly as on the wire.
	Outages fault.Outages
	// Downtimes is the station crash schedule: the station dies at each
	// window's StartSlot and accepts connections again from EndSlot on.
	Downtimes fault.Downtimes
	// Backoff is the seeded reconnect backoff schedule shared with the
	// socket client.
	Backoff fault.Backoff
	// MaxRetries bounds Retries+Restarts+Failovers+Reconnects per query
	// (0 = DefaultMaxRetries).
	MaxRetries int
	// DeadAir is the consecutive-unusable-read threshold for declaring a
	// channel dead (0 = DefaultDeadAir, negative = failover disabled).
	DeadAir int
}

func (rc RestartConfig) budget() int {
	return FaultConfig{MaxRetries: rc.MaxRetries}.budget()
}

func (rc RestartConfig) deadAir() int {
	return OutageConfig{DeadAir: rc.DeadAir}.deadAir()
}

func (rc RestartConfig) faultConfig() FaultConfig {
	return FaultConfig{Model: rc.Model, MaxRetries: rc.MaxRetries}
}

// dropEvent is one observed station crash: the connection died while a
// request for slot base was outstanding, killed by window win.
type dropEvent struct {
	base int
	win  fault.Downtime
}

// reconnect replays the client's crash-reconnect loop: each attempt
// charges one Reconnect against the shared budget and advances the
// listen slot by the seeded jittered backoff; an attempt succeeds once
// the station is back up at that slot. Returns the absolute slot the
// fresh connection listens from.
func (rc RestartConfig) reconnect(m *Metrics, drop *dropEvent) (int, error) {
	w := drop.base
	for attempt := 1; ; attempt++ {
		m.Reconnects++
		if m.Retries+m.Restarts+m.Failovers+m.Reconnects > rc.budget() {
			return 0, fmt.Errorf("sim: slot %d: %w after %d reconnect attempts",
				drop.base, fault.ErrRetryBudget, m.Reconnects-1)
		}
		w += rc.Backoff.Delay(attempt)
		if w >= drop.win.EndSlot && !rc.Downtimes.DownAt(w) {
			return w, nil
		}
	}
}

// readRestart reads (ch, slot) under the composed crash+outage+fault
// model for a connection born at slot born. Before anything else it asks
// whether the station died between the connection's birth and this
// read's serve slot: a crash drops the socket before the frame arrives,
// so the failed read costs no wake-up and no retry — it returns the drop
// event (with the requested slot the backoff counts from) for the caller
// to reconnect. Otherwise it is exactly readOutage: unusable slots burn
// retries and re-tune one cycle later, and deadAir consecutive failures
// (when > 0) report the channel dead for failover.
func (tl *Timeline) readRestart(m *Metrics, rc RestartConfig, deadAir, born, ch, slot int) (now int, e Entry, b Bucket, dead bool, drop *dropEvent, err error) {
	run := 0
	req := slot
	for {
		if win, ok := rc.Downtimes.KillIn(born, slot); ok {
			return 0, Entry{}, Bucket{}, false, &dropEvent{base: req, win: win}, nil
		}
		m.TuningTime++
		if !rc.Outages.DarkAt(ch, slot) {
			switch rc.Model.At(ch, slot) {
			case fault.OK, fault.Stall:
				e, b = tl.bucketAt(ch, slot)
				return slot, e, b, false, nil, nil
			}
		}
		m.Retries++
		if m.Retries+m.Restarts+m.Failovers+m.Reconnects > rc.budget() {
			return 0, Entry{}, Bucket{}, false, nil, fmt.Errorf("sim: channel %d slot %d: %w after %d redundant wake-ups",
				ch, slot, fault.ErrRetryBudget, m.Retries-1)
		}
		run++
		if deadAir > 0 && run >= deadAir {
			return slot, Entry{}, Bucket{}, true, nil, nil
		}
		// Retry: re-request the slot just heard; the cyclic catch-up
		// serves its next occurrence one cycle later.
		req = slot
		slot += tl.EntryAt(slot).Prog.CycleLen()
	}
}

// QueryRestart retrieves the data item with the given key from a
// timeline whose station crashes and warm-restarts on the Downtimes
// schedule. It is QueryOutage with the reconnect protocol layered in:
// a read whose serve slot postdates a crash observes the dropped socket,
// runs the seeded backoff loop (charging Reconnects), and re-probes from
// the reconnect slot on a fresh connection — which is then immune to
// every window that started before it was born. The session's connection
// predates the broadcast (born -1), matching a client that attached
// before slot 0; sessions attaching mid-broadcast model their history by
// trimming already-elapsed windows from the schedule.
func (tl *Timeline) QueryRestart(arrival int, key int64, pw Power, rc RestartConfig) (Metrics, bool, error) {
	var m Metrics
	if arrival < 0 {
		return m, false, fmt.Errorf("sim: negative arrival %d", arrival)
	}
	if err := rc.Downtimes.Validate(); err != nil {
		return m, false, err
	}
	for _, e := range tl.entries {
		if !e.Prog.t.Keyed() {
			return m, false, fmt.Errorf("sim: epoch %d tree is not keyed", e.Epoch)
		}
	}
	fc := rc.faultConfig()
	deadAir := rc.deadAir()
	K := tl.entries[0].Prog.Channels()
	rootCh := 1
	probeAt := arrival
	born := -1

probe:
	for {
		// Probe the believed root channel and synchronize on a root bucket.
		now, e, b, dead, drop, err := tl.readRestart(&m, rc, deadAir, born, rootCh, probeAt)
		if err != nil {
			return m, false, err
		}
		if drop != nil {
			if born, err = rc.reconnect(&m, drop); err != nil {
				return m, false, err
			}
			probeAt = born
			continue probe
		}
		if dead {
			if err := tl.failover(&m, OutageConfig{MaxRetries: rc.MaxRetries}, rootCh, now); err != nil {
				return m, false, err
			}
			rootCh = rootCh%K + 1
			probeAt = now + 1
			continue
		}
		rootCh = e.Prog.RootChannel()
		for redirects := 0; !isRoot(e, b); redirects++ {
			if redirects >= MaxProbeRedirects {
				return m, false, fmt.Errorf("%w after %d redirects (got %v)", ErrMissingRoot, redirects, b.Node)
			}
			step := b.NextCycle
			if step <= 0 {
				step = 1
			}
			if now, e, b, dead, drop, err = tl.readRestart(&m, rc, deadAir, born, rootCh, now+step); err != nil {
				return m, false, err
			}
			if drop != nil {
				if born, err = rc.reconnect(&m, drop); err != nil {
					return m, false, err
				}
				probeAt = born
				continue probe
			}
			if dead {
				if err := tl.failover(&m, OutageConfig{MaxRetries: rc.MaxRetries}, rootCh, now); err != nil {
					return m, false, err
				}
				rootCh = rootCh%K + 1
				probeAt = now + 1
				continue probe
			}
			rootCh = e.Prog.RootChannel()
		}
		epoch := e.Epoch
		descentStart := now
		m.ProbeWait = descentStart - arrival

		restarted := false
		for hops := 0; hops <= e.Prog.t.NumNodes()+1; hops++ {
			// Epoch stamp first: across a swap the slot may hold anything.
			if e.Epoch != epoch {
				if err := tl.restart(&m, fc, rootCh, now); err != nil {
					return m, false, err
				}
				probeAt = now + 1
				restarted = true
				break
			}
			t := e.Prog.t
			if b.Node != tree.None && t.IsData(b.Node) {
				k, _ := t.Key(b.Node)
				m.DataWait = now - descentStart + 1
				m.finish(pw)
				return m, k == key, nil
			}
			var ptr *Pointer
			for i := range b.Children {
				lo, hi, _ := t.KeyRange(b.Children[i].Target)
				if key >= lo && key <= hi {
					ptr = &b.Children[i]
					break
				}
			}
			if ptr == nil {
				// Negative lookup: no child covers the key.
				m.DataWait = now - descentStart + 1
				m.finish(pw)
				return m, false, nil
			}
			var dead bool
			var drop *dropEvent
			if now, e, b, dead, drop, err = tl.readRestart(&m, rc, deadAir, born, ptr.Channel, now+ptr.Offset); err != nil {
				return m, false, err
			}
			if drop != nil {
				if born, err = rc.reconnect(&m, drop); err != nil {
					return m, false, err
				}
				probeAt = born
				continue probe
			}
			if dead {
				// A pointer target went dark mid-descent. The root belief only
				// moves when the root channel itself is the one that died.
				if err := tl.failover(&m, OutageConfig{MaxRetries: rc.MaxRetries}, ptr.Channel, now); err != nil {
					return m, false, err
				}
				if ptr.Channel == rootCh {
					rootCh = rootCh%K + 1
				}
				probeAt = now + 1
				continue probe
			}
			rootCh = e.Prog.RootChannel()
			if e.Epoch == epoch && b.Node != ptr.Target {
				return m, false, fmt.Errorf("%w: pointer to %s found %v at channel %d slot %d",
					ErrBrokenPointer, t.Label(ptr.Target), b.Node, ptr.Channel, now)
			}
		}
		if !restarted {
			return m, false, fmt.Errorf("sim: descent did not terminate")
		}
	}
}

// QueryRestart runs the crash-restart protocol against a static program:
// the single-epoch timeline degenerate case.
func (p *Program) QueryRestart(arrival int, key int64, pw Power, rc RestartConfig) (Metrics, bool, error) {
	tl, err := NewTimeline(p, 0)
	if err != nil {
		return Metrics{}, false, err
	}
	return tl.QueryRestart(arrival, key, pw, rc)
}

// QueryRangeRestart retrieves every data item with a key in [lo, hi]
// from a timeline whose station crashes and warm-restarts on the
// Downtimes schedule. It is QueryRangeSwitch with the reconnect protocol
// layered in: a crash observed during the probe, the sync jump, or any
// frontier read drops the socket, the client reconnects under the seeded
// backoff, discards the partial key set — the interleaved frontier
// schedule addressed slots the dead station never aired — and re-scans
// from the reconnect slot. Range scans never fail over, matching the
// socket client.
func (tl *Timeline) QueryRangeRestart(arrival int, lo, hi int64, pw Power, rc RestartConfig) (RangeResult, error) {
	var res RangeResult
	if arrival < 0 {
		return res, fmt.Errorf("sim: negative arrival %d", arrival)
	}
	if lo > hi {
		return res, fmt.Errorf("sim: empty range [%d, %d]", lo, hi)
	}
	if err := rc.Downtimes.Validate(); err != nil {
		return res, err
	}
	for _, e := range tl.entries {
		if !e.Prog.t.Keyed() {
			return res, fmt.Errorf("sim: epoch %d tree is not keyed", e.Epoch)
		}
	}
	fc := rc.faultConfig()
	probeAt := arrival
	born := -1

restartScan:
	for {
		// Probe and synchronize with failover disabled: the socket range
		// client reads through Client.read, which has no dead-air detector.
		now, e, b, _, drop, err := tl.readRestart(&res.Metrics, rc, 0, born, 1, probeAt)
		if err != nil {
			return res, err
		}
		if drop != nil {
			if born, err = rc.reconnect(&res.Metrics, drop); err != nil {
				return res, err
			}
			probeAt = born
			continue restartScan
		}
		if !isRoot(e, b) {
			if now, e, b, _, drop, err = tl.readRestart(&res.Metrics, rc, 0, born, 1, now+b.NextCycle); err != nil {
				return res, err
			}
			if drop != nil {
				if born, err = rc.reconnect(&res.Metrics, drop); err != nil {
					return res, err
				}
				probeAt = born
				continue restartScan
			}
			if !isRoot(e, b) {
				return res, fmt.Errorf("%w (got %v)", ErrMissingRoot, b.Node)
			}
		}
		epoch := e.Epoch
		prog := e.Prog
		descentStart := now
		res.Metrics.ProbeWait = descentStart - arrival
		res.Keys = res.Keys[:0]

		intersects := func(id tree.ID) bool {
			l, h, ok := prog.t.KeyRange(id)
			return ok && l <= hi && h >= lo
		}
		q := pqueue.New(func(a, b pending) bool { return a.at < b.at })
		visit := func(at int, bucket Bucket) error {
			node := bucket.Node
			if node == tree.None {
				return fmt.Errorf("sim: range query read an empty bucket")
			}
			if prog.t.IsData(node) {
				k, _ := prog.t.Key(node)
				if k >= lo && k <= hi {
					res.Keys = append(res.Keys, k)
				}
				return nil
			}
			for _, c := range bucket.Children {
				if intersects(c.Target) {
					q.Push(pending{at: at + c.Offset, channel: c.Channel, target: c.Target})
				}
			}
			return nil
		}
		if err := visit(now, b); err != nil {
			return res, err
		}

		guard := 0
		maxReads := prog.t.NumNodes()*(prog.cycleLen+2) + fc.budget()
		for q.Len() > 0 {
			next := q.Pop()
			// The requested slot is what the backoff counts from; the
			// cyclic catch-up below decides the serve slot, and the crash
			// check runs against that — a window opening before the frame
			// would have aired kills the socket first.
			req := next.at
			for next.at <= now {
				next.at += tl.EntryAt(next.at).Prog.CycleLen()
			}
			if win, ok := rc.Downtimes.KillIn(born, next.at); ok {
				if born, err = rc.reconnect(&res.Metrics, &dropEvent{base: req, win: win}); err != nil {
					return res, err
				}
				probeAt = born
				continue restartScan
			}
			if guard++; guard > maxReads {
				return res, fmt.Errorf("sim: range query did not terminate")
			}
			now = next.at
			res.Metrics.TuningTime++
			if o := rc.Model.At(next.channel, next.at); rc.Outages.DarkAt(next.channel, next.at) || o == fault.Drop || o == fault.Corrupt {
				res.Metrics.Retries++
				if res.Metrics.Retries+res.Metrics.Restarts+res.Metrics.Failovers+res.Metrics.Reconnects > fc.budget() {
					return res, fmt.Errorf("sim: channel %d slot %d: %w after %d redundant wake-ups",
						next.channel, next.at, fault.ErrRetryBudget, res.Metrics.Retries-1)
				}
				q.Push(pending{at: now, channel: next.channel, target: next.target})
				continue
			}
			re, bucket := tl.bucketAt(next.channel, now)
			if re.Epoch != epoch {
				if err := tl.restart(&res.Metrics, fc, next.channel, now); err != nil {
					return res, err
				}
				probeAt = now + 1
				continue restartScan
			}
			if bucket.Node != next.target {
				return res, fmt.Errorf("%w: range pointer to %s found %v",
					ErrBrokenPointer, prog.t.Label(next.target), bucket.Node)
			}
			if err := visit(now, bucket); err != nil {
				return res, err
			}
		}
		res.Metrics.DataWait = now - descentStart + 1
		res.Metrics.finish(pw)
		return res, nil
	}
}

// RestartReport is the outcome of an evaluation under station crashes:
// the conditional mean cost over completed queries, the availability,
// and the hit rate, exactly like OutageReport (which it reuses).
type RestartReport = OutageReport

// EvaluateRestart computes the expected client cost of a static program
// under the crash-restart schedule over the arrival window [lo, hi): a
// query arrives uniformly at every slot in the window and requests each
// data item with probability proportional to its weight. Queries that
// exhaust the shared retry budget count against Availability instead of
// the cost averages.
func EvaluateRestart(p *Program, lo, hi int, pw Power, rc RestartConfig) (RestartReport, error) {
	tl, err := NewTimeline(p, 0)
	if err != nil {
		return RestartReport{}, err
	}
	if !p.t.Keyed() {
		return RestartReport{}, fmt.Errorf("sim: tree is not keyed")
	}
	var demand []Demand
	for _, d := range p.t.DataIDs() {
		k, ok := p.t.Key(d)
		if !ok {
			return RestartReport{}, fmt.Errorf("sim: data node %v has no key", d)
		}
		demand = append(demand, Demand{Key: k, Weight: p.t.Weight(d)})
	}
	return EvaluateRestartAdaptive(tl, lo, hi, demand, pw, rc)
}

// EvaluateRestartAdaptive is EvaluateRestart over an adaptive timeline
// and explicit demand. All averages are exact sums, not samples.
func EvaluateRestartAdaptive(tl *Timeline, lo, hi int, demand []Demand, pw Power, rc RestartConfig) (RestartReport, error) {
	var r RestartReport
	if lo < 0 || hi <= lo {
		return r, fmt.Errorf("sim: bad arrival window [%d, %d)", lo, hi)
	}
	var total float64
	for _, d := range demand {
		if d.Weight < 0 {
			return r, fmt.Errorf("sim: negative weight %v for key %d", d.Weight, d.Key)
		}
		total += d.Weight
	}
	if total == 0 {
		return r, fmt.Errorf("sim: zero total demand")
	}
	phases := float64(hi - lo)
	var completed, failed, hits float64
	for _, d := range demand {
		u := d.Weight / total / phases
		for a := lo; a < hi; a++ {
			m, found, err := tl.QueryRestart(a, d.Key, pw, rc)
			if errors.Is(err, fault.ErrRetryBudget) {
				failed += u
				continue
			}
			if err != nil {
				return r, fmt.Errorf("sim: key %d arrival %d: %w", d.Key, a, err)
			}
			completed += u
			r.Summary.ProbeWait += u * float64(m.ProbeWait)
			r.Summary.DataWait += u * float64(m.DataWait)
			r.Summary.AccessTime += u * float64(m.AccessTime)
			r.Summary.TuningTime += u * float64(m.TuningTime)
			r.Summary.Retries += u * float64(m.Retries)
			r.Summary.Restarts += u * float64(m.Restarts)
			r.Summary.Failovers += u * float64(m.Failovers)
			r.Summary.Reconnects += u * float64(m.Reconnects)
			r.Summary.Energy += u * m.Energy
			if found {
				hits += u
			}
		}
	}
	r.Availability = completed / (completed + failed)
	if completed > 0 {
		r.Summary.ProbeWait /= completed
		r.Summary.DataWait /= completed
		r.Summary.AccessTime /= completed
		r.Summary.TuningTime /= completed
		r.Summary.Retries /= completed
		r.Summary.Failovers /= completed
		r.Summary.Restarts /= completed
		r.Summary.Reconnects /= completed
		r.Summary.Energy /= completed
		r.HitRate = hits / completed
	}
	return r, nil
}
