package sim

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/pqueue"
	"repro/internal/tree"
)

// This file is the analytic twin of an adaptive broadcast tower: a
// Timeline concatenates epoch-versioned programs along the absolute slot
// axis, with each swap landing exactly at a cycle boundary of the
// outgoing epoch (the same invariant the netcast server enforces), and
// QuerySwitch/QueryRangeSwitch drive a client across swaps with the
// restart protocol the TCP client implements over real sockets. The two
// paths are kept in lockstep so they report byte-identical Metrics —
// including Restarts — under identical seeds.

// Entry is one epoch of a broadcast timeline: the program that is on the
// air from absolute slot Start until the next entry's Start.
type Entry struct {
	// Epoch is the program generation stamped into every bucket on the
	// wire. Monotonically increasing along the timeline.
	Epoch uint32
	// Prog is the compiled program broadcast during this epoch.
	Prog *Program
	// Start is the absolute slot at which this epoch takes the air; it is
	// always a cycle boundary of the preceding epoch.
	Start int
}

// Timeline is a broadcast schedule over absolute time: a sequence of
// epochs, each serving its program cyclically until the next swap.
type Timeline struct {
	entries []Entry
}

// NewTimeline starts a timeline broadcasting p as the given epoch from
// absolute slot 0.
func NewTimeline(p *Program, epoch uint32) (*Timeline, error) {
	if p == nil {
		return nil, fmt.Errorf("sim: nil program")
	}
	return &Timeline{entries: []Entry{{Epoch: epoch, Prog: p, Start: 0}}}, nil
}

// Append stages the next epoch: p takes the air at the first cycle
// boundary of the current last epoch at or after absolute slot notBefore
// (the slot at which the rebuilt program became available). It returns
// the swap slot. The channel count must not change across epochs — the
// client's tuner has no way to learn of new channels mid-flight — and
// epochs must strictly increase.
func (tl *Timeline) Append(p *Program, epoch uint32, notBefore int) (int, error) {
	last := &tl.entries[len(tl.entries)-1]
	if p == nil {
		return 0, fmt.Errorf("sim: nil program")
	}
	if p.Channels() != last.Prog.Channels() {
		return 0, fmt.Errorf("sim: epoch %d has %d channels, timeline has %d",
			epoch, p.Channels(), last.Prog.Channels())
	}
	if epoch <= last.Epoch {
		return 0, fmt.Errorf("sim: epoch %d does not advance %d", epoch, last.Epoch)
	}
	if notBefore <= last.Start {
		return 0, fmt.Errorf("sim: epoch %d staged at slot %d before its predecessor aired (start %d)",
			epoch, notBefore, last.Start)
	}
	L := last.Prog.CycleLen()
	start := last.Start + (notBefore-last.Start+L-1)/L*L
	tl.entries = append(tl.entries, Entry{Epoch: epoch, Prog: p, Start: start})
	return start, nil
}

// Entries returns the timeline's epochs in air order.
func (tl *Timeline) Entries() []Entry { return tl.entries }

// EntryAt returns the epoch on the air at absolute slot t.
func (tl *Timeline) EntryAt(t int) Entry {
	i := len(tl.entries) - 1
	for i > 0 && tl.entries[i].Start > t {
		i--
	}
	return tl.entries[i]
}

// CycleSlot maps absolute slot t to the on-air epoch and its 1-based
// cycle slot.
func (tl *Timeline) CycleSlot(t int) (Entry, int) {
	e := tl.EntryAt(t)
	return e, (t-e.Start)%e.Prog.CycleLen() + 1
}

// bucketAt reads the bucket on the air at (ch, t).
func (tl *Timeline) bucketAt(ch, t int) (Entry, Bucket) {
	e, cs := tl.CycleSlot(t)
	return e, e.Prog.buckets[ch-1][cs-1]
}

// readAt is the timeline counterpart of Program.readAt: a lost or
// corrupt read re-tunes to the same cycle slot one cycle later — one
// cycle of whichever epoch owns the missed slot, exactly the catch-up
// the netcast server performs for a re-requested slot.
func (tl *Timeline) readAt(m *Metrics, fc FaultConfig, ch, slot int) (int, Entry, Bucket, error) {
	for {
		m.TuningTime++
		switch fc.Model.At(ch, slot) {
		case fault.OK, fault.Stall:
			e, b := tl.bucketAt(ch, slot)
			return slot, e, b, nil
		default:
			m.Retries++
			if m.Retries+m.Restarts+m.Failovers+m.Reconnects > fc.budget() {
				return 0, Entry{}, Bucket{}, fmt.Errorf("sim: channel %d slot %d: %w after %d redundant wake-ups",
					ch, slot, fault.ErrRetryBudget, m.Retries-1)
			}
			slot += tl.EntryAt(slot).Prog.CycleLen()
		}
	}
}

// isRoot reports whether b opens a descent of e's program.
func isRoot(e Entry, b Bucket) bool {
	return b.RootCopy || (b.Node != tree.None && b.Node == e.Prog.t.Root())
}

// restart charges one descent restart against the shared retry budget.
func (tl *Timeline) restart(m *Metrics, fc FaultConfig, ch, slot int) error {
	m.Restarts++
	if m.Retries+m.Restarts+m.Failovers+m.Reconnects > fc.budget() {
		return fmt.Errorf("sim: channel %d slot %d: %w after %d descent restarts",
			ch, slot, fault.ErrRetryBudget, m.Restarts-1)
	}
	return nil
}

// QuerySwitch retrieves the data item with the given key from the
// timeline, arriving at the given absolute slot. A descent that reads a
// bucket from a newer epoch than the one it started in has stale
// pointers: the client charges a restart against the retry budget and
// probes again from the next slot, descending the new epoch's tree. The
// returned found is false when the key is absent from the tree the
// descent completed in. ProbeWait covers everything before the root
// bucket the *successful* descent started from, so restarted work
// surfaces as probe wait — the client-visible reallocation cost.
func (tl *Timeline) QuerySwitch(arrival int, key int64, pw Power, fc FaultConfig) (Metrics, bool, error) {
	var m Metrics
	if arrival < 0 {
		return m, false, fmt.Errorf("sim: negative arrival %d", arrival)
	}
	for _, e := range tl.entries {
		if !e.Prog.t.Keyed() {
			return m, false, fmt.Errorf("sim: epoch %d tree is not keyed", e.Epoch)
		}
	}

	probeAt := arrival
	for {
		// Probe and synchronize. A sync jump always lands on a cycle
		// start, and every cycle start on the timeline holds a root —
		// the outgoing epoch's or, exactly at a swap, the new epoch's —
		// so the client adopts whatever epoch it finds there silently.
		now, e, b, err := tl.readAt(&m, fc, 1, probeAt)
		if err != nil {
			return m, false, err
		}
		if !isRoot(e, b) {
			if now, e, b, err = tl.readAt(&m, fc, 1, now+b.NextCycle); err != nil {
				return m, false, err
			}
			if !isRoot(e, b) {
				return m, false, fmt.Errorf("%w (got %v)", ErrMissingRoot, b.Node)
			}
		}
		epoch := e.Epoch
		descentStart := now
		m.ProbeWait = descentStart - arrival

		restarted := false
		for hops := 0; hops <= e.Prog.t.NumNodes()+1; hops++ {
			// The epoch stamp is checked before the bucket is interpreted:
			// across a swap the slot may hold anything — an empty filler,
			// a different subtree — and only the stamp says so.
			if e.Epoch != epoch {
				if err := tl.restart(&m, fc, 1, now); err != nil {
					return m, false, err
				}
				probeAt = now + 1
				restarted = true
				break
			}
			t := e.Prog.t
			if b.Node != tree.None && t.IsData(b.Node) {
				k, _ := t.Key(b.Node)
				m.DataWait = now - descentStart + 1
				m.finish(pw)
				return m, k == key, nil
			}
			var ptr *Pointer
			for i := range b.Children {
				lo, hi, _ := t.KeyRange(b.Children[i].Target)
				if key >= lo && key <= hi {
					ptr = &b.Children[i]
					break
				}
			}
			if ptr == nil {
				// Negative lookup: no child covers the key.
				m.DataWait = now - descentStart + 1
				m.finish(pw)
				return m, false, nil
			}
			if now, e, b, err = tl.readAt(&m, fc, ptr.Channel, now+ptr.Offset); err != nil {
				return m, false, err
			}
			if e.Epoch == epoch && b.Node != ptr.Target {
				return m, false, fmt.Errorf("%w: pointer to %s found %v at channel %d slot %d",
					ErrBrokenPointer, t.Label(ptr.Target), b.Node, ptr.Channel, now)
			}
		}
		if !restarted {
			return m, false, fmt.Errorf("sim: descent did not terminate")
		}
	}
}

// QueryRangeSwitch retrieves every data item with a key in [lo, hi]
// from the timeline; see Program.QueryRange for the frontier protocol.
// A swap observed mid-scan invalidates the whole frontier — offsets from
// a retired program address slots that no longer exist — so the client
// discards the partial result set, charges one restart and re-scans from
// the new epoch's root.
func (tl *Timeline) QueryRangeSwitch(arrival int, lo, hi int64, pw Power, fc FaultConfig) (RangeResult, error) {
	var res RangeResult
	if arrival < 0 {
		return res, fmt.Errorf("sim: negative arrival %d", arrival)
	}
	if lo > hi {
		return res, fmt.Errorf("sim: empty range [%d, %d]", lo, hi)
	}
	for _, e := range tl.entries {
		if !e.Prog.t.Keyed() {
			return res, fmt.Errorf("sim: epoch %d tree is not keyed", e.Epoch)
		}
	}

	probeAt := arrival
restartScan:
	for {
		now, e, b, err := tl.readAt(&res.Metrics, fc, 1, probeAt)
		if err != nil {
			return res, err
		}
		if !isRoot(e, b) {
			if now, e, b, err = tl.readAt(&res.Metrics, fc, 1, now+b.NextCycle); err != nil {
				return res, err
			}
			if !isRoot(e, b) {
				return res, fmt.Errorf("%w (got %v)", ErrMissingRoot, b.Node)
			}
		}
		epoch := e.Epoch
		prog := e.Prog
		descentStart := now
		res.Metrics.ProbeWait = descentStart - arrival
		res.Keys = res.Keys[:0]

		intersects := func(id tree.ID) bool {
			l, h, ok := prog.t.KeyRange(id)
			return ok && l <= hi && h >= lo
		}
		q := pqueue.New(func(a, b pending) bool { return a.at < b.at })
		visit := func(at int, bucket Bucket) error {
			node := bucket.Node
			if node == tree.None {
				return fmt.Errorf("sim: range query read an empty bucket")
			}
			if prog.t.IsData(node) {
				k, _ := prog.t.Key(node)
				if k >= lo && k <= hi {
					res.Keys = append(res.Keys, k)
				}
				return nil
			}
			for _, c := range bucket.Children {
				if intersects(c.Target) {
					q.Push(pending{at: at + c.Offset, channel: c.Channel, target: c.Target})
				}
			}
			return nil
		}
		if err := visit(now, b); err != nil {
			return res, err
		}

		guard := 0
		maxReads := prog.t.NumNodes()*(prog.cycleLen+2) + fc.budget()
		for q.Len() > 0 {
			next := q.Pop()
			// Single receiver: a passed or colliding slot is caught on a
			// later cyclic transmission — one cycle of whichever epoch
			// owns the missed slot, mirroring the server's catch-up.
			for next.at <= now {
				next.at += tl.EntryAt(next.at).Prog.CycleLen()
			}
			if guard++; guard > maxReads {
				return res, fmt.Errorf("sim: range query did not terminate")
			}
			now = next.at
			res.Metrics.TuningTime++
			if o := fc.Model.At(next.channel, next.at); o == fault.Drop || o == fault.Corrupt {
				res.Metrics.Retries++
				if res.Metrics.Retries+res.Metrics.Restarts+res.Metrics.Failovers+res.Metrics.Reconnects > fc.budget() {
					return res, fmt.Errorf("sim: channel %d slot %d: %w after %d redundant wake-ups",
						next.channel, next.at, fault.ErrRetryBudget, res.Metrics.Retries-1)
				}
				q.Push(pending{at: now, channel: next.channel, target: next.target})
				continue
			}
			re, bucket := tl.bucketAt(next.channel, now)
			if re.Epoch != epoch {
				if err := tl.restart(&res.Metrics, fc, next.channel, now); err != nil {
					return res, err
				}
				probeAt = now + 1
				continue restartScan
			}
			if bucket.Node != next.target {
				return res, fmt.Errorf("%w: range pointer to %s found %v",
					ErrBrokenPointer, prog.t.Label(next.target), bucket.Node)
			}
			if err := visit(now, bucket); err != nil {
				return res, err
			}
		}
		res.Metrics.DataWait = now - descentStart + 1
		res.Metrics.finish(pw)
		return res, nil
	}
}

// Demand is one key's request weight in an adaptive evaluation.
type Demand struct {
	Key    int64
	Weight float64
}

// EvaluateAdaptive computes the expected client cost of the timeline
// over the arrival window [lo, hi): a query arrives uniformly at every
// slot in the window and requests each demanded key with probability
// proportional to its weight. It returns the weighted-average Summary
// and the hit rate — the weighted fraction of lookups that found their
// key, which drops below 1 exactly when the on-air program is stale
// against the demand. All averages are exact sums, not samples.
func EvaluateAdaptive(tl *Timeline, lo, hi int, demand []Demand, pw Power, fc FaultConfig) (Summary, float64, error) {
	var s Summary
	if lo < 0 || hi <= lo {
		return s, 0, fmt.Errorf("sim: bad arrival window [%d, %d)", lo, hi)
	}
	var total float64
	for _, d := range demand {
		if d.Weight < 0 {
			return s, 0, fmt.Errorf("sim: negative weight %v for key %d", d.Weight, d.Key)
		}
		total += d.Weight
	}
	if total == 0 {
		return s, 0, fmt.Errorf("sim: zero total demand")
	}
	phases := float64(hi - lo)
	var hits float64
	for _, d := range demand {
		w := d.Weight / total
		for a := lo; a < hi; a++ {
			m, found, err := tl.QuerySwitch(a, d.Key, pw, fc)
			if err != nil {
				return s, 0, fmt.Errorf("sim: key %d arrival %d: %w", d.Key, a, err)
			}
			s.ProbeWait += w * float64(m.ProbeWait) / phases
			s.DataWait += w * float64(m.DataWait) / phases
			s.AccessTime += w * float64(m.AccessTime) / phases
			s.TuningTime += w * float64(m.TuningTime) / phases
			s.Retries += w * float64(m.Retries) / phases
			s.Restarts += w * float64(m.Restarts) / phases
			s.Failovers += w * float64(m.Failovers) / phases
			s.Reconnects += w * float64(m.Reconnects) / phases
			s.Energy += w * m.Energy / phases
			if found {
				hits += w / phases
			}
		}
	}
	return s, hits, nil
}
