package sim

import "fmt"

// Restored builds a skeleton Program from the shape data a station
// checkpoint records: channel count, cycle length and root channel, but
// no index tree and no buckets. A warm-started tower serves the
// checkpointed wire packets verbatim, so the skeleton only has to answer
// the shape questions the serving loop asks (Channels, CycleLen,
// RootChannel); everything requiring the tree — queries, re-encoding,
// batch planning — is unavailable and guarded by IsRestored.
func Restored(channels, cycleLen, rootChannel int) (*Program, error) {
	switch {
	case channels < 1:
		return nil, fmt.Errorf("sim: restored program with %d channels", channels)
	case cycleLen < 1:
		return nil, fmt.Errorf("sim: restored program with cycle length %d", cycleLen)
	case rootChannel < 1 || rootChannel > channels:
		return nil, fmt.Errorf("sim: restored root channel %d outside [1, %d]", rootChannel, channels)
	}
	return &Program{k: channels, cycleLen: cycleLen, rootCh: rootChannel}, nil
}

// IsRestored reports whether p is a checkpoint-restored skeleton: shape
// only, no index tree. Skeletons can be aired from checkpointed packets
// but cannot be queried analytically or re-encoded.
func (p *Program) IsRestored() bool { return p.t == nil }
