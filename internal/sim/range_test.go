package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/alphatree"
	"repro/internal/core"
	"repro/internal/stats"
)

// keyedProgram builds a Hu-Tucker tree over n keys 1..n and compiles its
// k-channel allocation.
func keyedProgram(t *testing.T, n, k int, seed int64) *Program {
	t.Helper()
	rng := stats.NewRNG(seed)
	items := make([]alphatree.Item, n)
	for i := range items {
		items[i] = alphatree.Item{
			Label:  string(rune('a' + i%26)),
			Key:    int64(i + 1),
			Weight: float64(1 + rng.Intn(100)),
		}
	}
	tr, err := alphatree.HuTucker(items)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(tr, core.Config{Channels: k})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(sol.Alloc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestQueryRangeFindsAllKeys(t *testing.T) {
	p := keyedProgram(t, 10, 2, 1)
	res, err := p.QueryRange(0, 3, 7, testPower)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(res.Keys, func(i, j int) bool { return res.Keys[i] < res.Keys[j] })
	want := []int64{3, 4, 5, 6, 7}
	if len(res.Keys) != len(want) {
		t.Fatalf("keys = %v, want %v", res.Keys, want)
	}
	for i := range want {
		if res.Keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", res.Keys, want)
		}
	}
	if res.Metrics.TuningTime < len(want) {
		t.Fatalf("tuning %d < %d retrieved items", res.Metrics.TuningTime, len(want))
	}
	if res.Metrics.AccessTime < res.Metrics.DataWait {
		t.Fatal("access < data wait")
	}
}

func TestQueryRangeSingleKeyMatchesPointQuery(t *testing.T) {
	p := keyedProgram(t, 8, 1, 2)
	for key := int64(1); key <= 8; key++ {
		r, err := p.QueryRange(0, key, key, testPower)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Keys) != 1 || r.Keys[0] != key {
			t.Fatalf("range [%d,%d] keys = %v", key, key, r.Keys)
		}
		m, found, err := p.QueryKey(0, key, testPower)
		if err != nil || !found {
			t.Fatalf("point query %d: %v", key, err)
		}
		// A single-channel single-key range descent reads the same path.
		if r.Metrics.TuningTime != m.TuningTime {
			t.Fatalf("key %d: range tuning %d != point tuning %d",
				key, r.Metrics.TuningTime, m.TuningTime)
		}
	}
}

func TestQueryRangeEmptyIntersection(t *testing.T) {
	p := keyedProgram(t, 6, 2, 3)
	res, err := p.QueryRange(0, 100, 200, testPower)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 0 {
		t.Fatalf("keys = %v, want none", res.Keys)
	}
	// Only the root is read.
	if res.Metrics.TuningTime != 1 {
		t.Fatalf("tuning = %d, want 1", res.Metrics.TuningTime)
	}
}

func TestQueryRangeErrors(t *testing.T) {
	p := keyedProgram(t, 6, 2, 4)
	if _, err := p.QueryRange(0, 7, 3, testPower); err == nil {
		t.Fatal("want error for inverted range")
	}
	if _, err := p.QueryRange(-1, 1, 3, testPower); err == nil {
		t.Fatal("want error for negative arrival")
	}
	// Unkeyed trees cannot serve range queries.
	up := fig1Program(t, Options{})
	if _, err := up.QueryRange(0, 1, 3, testPower); err == nil {
		t.Fatal("want error for unkeyed tree")
	}
}

// Property: for random catalogs, channel counts, arrivals and ranges, a
// range query finds exactly the catalog keys inside the range, under both
// plain and root-replicated programs.
func TestQuickQueryRangeComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(14)
		items := make([]alphatree.Item, n)
		for i := range items {
			items[i] = alphatree.Item{
				Label:  "x",
				Key:    int64(i*2 + 1), // odd keys: gaps exist
				Weight: float64(1 + rng.Intn(50)),
			}
		}
		tr, err := alphatree.HuTucker(items)
		if err != nil {
			return false
		}
		sol, err := core.Solve(tr, core.Config{Channels: 1 + rng.Intn(3)})
		if err != nil {
			return false
		}
		for _, copies := range []bool{false, true} {
			p, err := Compile(sol.Alloc, Options{FillWithRootCopies: copies})
			if err != nil {
				return false
			}
			lo := int64(rng.Intn(2*n + 2))
			hi := lo + int64(rng.Intn(2*n+2))
			arrival := rng.Intn(2*p.CycleLen() + 1)
			res, err := p.QueryRange(arrival, lo, hi, testPower)
			if err != nil {
				t.Logf("seed=%d [%d,%d] arrival=%d: %v", seed, lo, hi, arrival, err)
				return false
			}
			want := map[int64]bool{}
			for _, it := range items {
				if it.Key >= lo && it.Key <= hi {
					want[it.Key] = true
				}
			}
			if len(res.Keys) != len(want) {
				t.Logf("seed=%d [%d,%d]: got %v, want %d keys", seed, lo, hi, res.Keys, len(want))
				return false
			}
			for _, k := range res.Keys {
				if !want[k] {
					t.Logf("seed=%d: spurious key %d", seed, k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueryRange(b *testing.B) {
	rng := stats.NewRNG(1)
	items := make([]alphatree.Item, 16)
	for i := range items {
		items[i] = alphatree.Item{Label: "x", Key: int64(i + 1), Weight: float64(1 + rng.Intn(100))}
	}
	tr, err := alphatree.HuTucker(items)
	if err != nil {
		b.Fatal(err)
	}
	sol, err := core.Solve(tr, core.Config{Channels: 2})
	if err != nil {
		b.Fatal(err)
	}
	p, err := Compile(sol.Alloc, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.QueryRange(i%p.CycleLen(), 4, 12, Power{Active: 1, Doze: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}
