package sim

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/tree"
)

// This file implements remap-to-full-width: a program solved over k'
// surviving channels is re-expressed as a program over the tower's full
// physical width, with the dark channels transmitting filler. The epoch
// registry and the adaptive timeline both require consecutive programs to
// have equal channel counts — a survivor replan must not shrink the
// tower, only re-route the content — and Remap is how that invariant is
// preserved under outage.

// Remap input errors. Remap wraps these with %w so an operator loop can
// distinguish "nothing survived the outage" (ErrNoSurvivors — replanning
// is pointless, the tower is dark) from a malformed channel mapping
// (ErrChannelOutOfRange — a bug in the caller) without matching message
// text.
var (
	// ErrNoSurvivors reports a remap onto an empty survivor set.
	ErrNoSurvivors = errors.New("sim: remap with no surviving channels")

	// ErrChannelOutOfRange reports a physical channel id outside
	// [1, width].
	ErrChannelOutOfRange = errors.New("sim: remap physical channel out of range")
)

// Remap re-expresses the program over width physical channels, placing
// logical channel i on physical channel phys[i-1]. Physical channels not
// named in phys transmit only dead-air filler (every bucket Node ==
// tree.None). The phys list must be strictly increasing, within
// [1, width], and exactly as long as the program's channel count.
//
// The receiver is not modified; the result is a deep copy (buckets and
// pointer slices are cloned) so the original stays servable while the
// remapped program is staged as the next epoch. The remapped program's
// root channel is phys[0] — clients probing for the index root are
// redirected there by the RootChannel stamp on every bucket's frame.
func (p *Program) Remap(phys []int, width int) (*Program, error) {
	if len(phys) == 0 {
		return nil, fmt.Errorf("%w (program has %d channels)", ErrNoSurvivors, p.k)
	}
	if len(phys) != p.k {
		return nil, fmt.Errorf("sim: remap got %d physical channels for a %d-channel program", len(phys), p.k)
	}
	if width < p.k {
		return nil, fmt.Errorf("sim: remap width %d below program channel count %d", width, p.k)
	}
	for i, ch := range phys {
		if ch < 1 || ch > width {
			return nil, fmt.Errorf("%w: channel %d outside [1, %d]", ErrChannelOutOfRange, ch, width)
		}
		if i > 0 && ch <= phys[i-1] {
			return nil, fmt.Errorf("sim: remap physical channels %v not strictly increasing", phys)
		}
	}
	q := &Program{
		t:        p.t,
		k:        width,
		cycleLen: p.cycleLen,
		buckets:  make([][]Bucket, width),
		slotOf:   make([]alloc.Position, len(p.slotOf)),
		rootCh:   phys[0],
	}
	// Dark channels carry filler buckets that still advertise the cycle
	// boundary, so a client that tunes into dead air can re-synchronize.
	for ch := range q.buckets {
		q.buckets[ch] = make([]Bucket, q.cycleLen)
		for s := 1; s <= q.cycleLen; s++ {
			q.buckets[ch][s-1] = Bucket{Node: tree.None, NextCycle: q.cycleLen - s + 1}
		}
	}
	for logical := 1; logical <= p.k; logical++ {
		dst := q.buckets[phys[logical-1]-1]
		for s := range p.buckets[logical-1] {
			b := p.buckets[logical-1][s]
			if len(b.Children) > 0 {
				children := make([]Pointer, len(b.Children))
				for i, c := range b.Children {
					if c.Channel < 1 || c.Channel > p.k {
						return nil, fmt.Errorf("sim: remap pointer to channel %d outside program width %d", c.Channel, p.k)
					}
					children[i] = Pointer{Channel: phys[c.Channel-1], Offset: c.Offset, Target: c.Target}
				}
				b.Children = children
			}
			dst[s] = b
		}
	}
	for id, pos := range p.slotOf {
		if pos.Channel >= 1 && pos.Channel <= p.k {
			q.slotOf[id] = alloc.Position{Channel: phys[pos.Channel-1], Slot: pos.Slot}
		}
	}
	return q, nil
}
