package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/tree"
)

// planFor hand-builds a single-antenna plan reading the given data nodes
// at their first airing at or after arrival, in first-airing order, one
// slot of progress between reads — the minimal well-formed plan for
// white-box tests (internal/retrieval owns the real planners).
func planFor(p *Program, arrival int, targets []tree.ID) *BatchPlan {
	plan := &BatchPlan{Arrival: arrival, Antennas: 1, SwitchCost: 1}
	at := arrival
	for _, id := range targets {
		pos := p.slotOf[id]
		slot := at + (pos.Slot-1-at%p.cycleLen+p.cycleLen)%p.cycleLen
		plan.Steps = append(plan.Steps, BatchStep{
			Channel: pos.Channel, Slot: slot, Node: id, Label: p.t.Label(id),
		})
		at = slot + 1
	}
	return plan
}

// airingOrder sorts data nodes by their first airing after arrival 0 so
// planFor's sequential schedule is feasible without cycle spills.
func airingOrder(p *Program, n int) []tree.ID {
	ids := append([]tree.ID(nil), p.t.DataIDs()...)
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && p.slotOf[ids[j]].Slot < p.slotOf[ids[j-1]].Slot; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	if n < len(ids) {
		ids = ids[:n]
	}
	return ids
}

func TestQueryBatchPerfectChannel(t *testing.T) {
	p := keyedProgram(t, 10, 2, 3)
	targets := airingOrder(p, 4)
	plan := planFor(p, 0, targets)
	m, err := p.QueryBatch(plan, testPower, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.TuningTime != len(targets) {
		t.Errorf("tuning %d != %d reads", m.TuningTime, len(targets))
	}
	if m.Retries != 0 || m.Restarts != 0 || m.Failovers != 0 {
		t.Errorf("perfect channel charged recovery: %+v", m)
	}
	first := plan.Steps[0].Slot
	last := plan.Steps[len(plan.Steps)-1].Slot
	if m.ProbeWait != first || m.DataWait != last-first+1 || m.AccessTime != last+1 {
		t.Errorf("waits (%d,%d,%d) disagree with schedule [%d,%d]",
			m.ProbeWait, m.DataWait, m.AccessTime, first, last)
	}
}

// TestQueryBatchRetriesPushLaterReads pins the cyclic catch-up rule: a
// read that spills into later cycles delays every subsequent read on the
// same antenna past it, exactly like the netcast server would.
func TestQueryBatchRetriesPushLaterReads(t *testing.T) {
	p := keyedProgram(t, 10, 2, 3)
	targets := airingOrder(p, 3)
	plan := planFor(p, 0, targets)
	fc := FaultConfig{Model: fault.Model{Seed: 7, Drop: 0.4}, MaxRetries: 64}
	m, err := p.QueryBatch(plan, testPower, fc)
	if err != nil {
		t.Fatal(err)
	}
	if m.TuningTime != len(targets)+m.Retries {
		t.Errorf("tuning %d != %d + %d retries", m.TuningTime, len(targets), m.Retries)
	}
	if m.Retries > 0 {
		wantMin := plan.Makespan() + m.Retries*p.CycleLen() - (p.CycleLen()-1)*m.Retries
		if m.AccessTime < wantMin {
			t.Errorf("access %d below any retried schedule (retries %d)", m.AccessTime, m.Retries)
		}
	}
	// The same plan under the same seed replays byte-identically.
	m2, err := p.QueryBatch(plan, testPower, fc)
	if err != nil {
		t.Fatal(err)
	}
	if m != m2 {
		t.Errorf("replay diverged: %+v != %+v", m, m2)
	}
}

func TestQueryBatchRejectsBadPlans(t *testing.T) {
	p := keyedProgram(t, 10, 2, 3)
	targets := airingOrder(p, 2)
	good := planFor(p, 0, targets)
	cases := []struct {
		name   string
		mutate func(*BatchPlan)
	}{
		{"nil steps", func(b *BatchPlan) { b.Steps = nil }},
		{"negative arrival", func(b *BatchPlan) { b.Arrival = -1; b.Steps[0].Slot = 0 }},
		{"zero antennas", func(b *BatchPlan) { b.Antennas = 0 }},
		{"channel out of range", func(b *BatchPlan) { b.Steps[0].Channel = p.Channels() + 1 }},
		{"antenna out of range", func(b *BatchPlan) { b.Steps[0].Antenna = 1 }},
		{"slot before arrival", func(b *BatchPlan) { b.Arrival = b.Steps[0].Slot + 1 }},
		{"non-monotone", func(b *BatchPlan) { b.Steps[1].Slot = b.Steps[0].Slot }},
		{"wrong node", func(b *BatchPlan) { b.Steps[0].Slot++ }},
	}
	for _, c := range cases {
		plan := &BatchPlan{}
		*plan = *good
		plan.Steps = append([]BatchStep(nil), good.Steps...)
		c.mutate(plan)
		if _, err := p.QueryBatch(plan, testPower, FaultConfig{}); !errors.Is(err, ErrBadPlan) {
			t.Errorf("%s: err = %v, want ErrBadPlan", c.name, err)
		}
	}
	if _, err := p.QueryBatch(nil, testPower, FaultConfig{}); !errors.Is(err, ErrBadPlan) {
		t.Errorf("nil plan: err = %v, want ErrBadPlan", err)
	}
}

// staticPlanner adapts planFor to the BatchPlanner interface for
// EvaluateBatch tests.
type staticPlanner struct{}

func (staticPlanner) PlanBatch(p *Program, arrival int, targets []tree.ID) (*BatchPlan, error) {
	ordered := append([]tree.ID(nil), targets...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0; j-- {
			a0 := arrival + (p.slotOf[ordered[j]].Slot-1-arrival%p.cycleLen+p.cycleLen)%p.cycleLen
			a1 := arrival + (p.slotOf[ordered[j-1]].Slot-1-arrival%p.cycleLen+p.cycleLen)%p.cycleLen
			if a0 < a1 {
				ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
			}
		}
	}
	return planFor(p, arrival, ordered), nil
}

func TestEvaluateBatchFoldsEveryArrival(t *testing.T) {
	p := keyedProgram(t, 10, 2, 3)
	targets := airingOrder(p, 3)
	s, err := EvaluateBatch(p, targets, testPower, FaultConfig{}, staticPlanner{})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute by hand through the same fold; the two must be
	// bit-identical.
	var ms []Metrics
	for a := 0; a < p.CycleLen(); a++ {
		plan, err := staticPlanner{}.PlanBatch(p, a, targets)
		if err != nil {
			t.Fatal(err)
		}
		m, err := p.QueryBatch(plan, testPower, FaultConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	if want := FoldBatch(ms); s != want {
		t.Errorf("EvaluateBatch = %+v, want %+v", s, want)
	}
	if math.Abs(s.TuningTime-float64(len(targets))) > 1e-9 {
		t.Errorf("expected tuning %v != batch size %d on a perfect channel", s.TuningTime, len(targets))
	}
}

func TestFoldBatchEmpty(t *testing.T) {
	if s := FoldBatch(nil); s != (Summary{}) {
		t.Errorf("FoldBatch(nil) = %+v, want zero", s)
	}
}
