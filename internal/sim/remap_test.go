package sim

import (
	"errors"
	"testing"
)

// TestRemapEdgeCases pins the typed errors of the survivor remap: an
// empty survivor set and out-of-range physical channels must fail with
// classifiable sentinels, not panic or silently produce a dark tower.
func TestRemapEdgeCases(t *testing.T) {
	p := keyedProgram(t, 10, 2, 3)

	cases := []struct {
		name  string
		phys  []int
		width int
		want  error
	}{
		{"empty survivors", nil, 3, ErrNoSurvivors},
		{"empty survivors nonzero width", []int{}, 2, ErrNoSurvivors},
		{"channel zero", []int{0, 2}, 3, ErrChannelOutOfRange},
		{"channel above width", []int{1, 4}, 3, ErrChannelOutOfRange},
		{"negative channel", []int{-1, 2}, 3, ErrChannelOutOfRange},
	}
	for _, c := range cases {
		q, err := p.Remap(c.phys, c.width)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
		if q != nil {
			t.Errorf("%s: got a program alongside the error", c.name)
		}
	}

	// Non-sentinel rejections stay errors too: wrong survivor count,
	// width below the program's channel count, and a non-increasing map.
	for _, c := range []struct {
		name  string
		phys  []int
		width int
	}{
		{"too few survivors", []int{1}, 3},
		{"width below k", []int{1, 2}, 1},
		{"not increasing", []int{2, 2}, 3},
	} {
		if _, err := p.Remap(c.phys, c.width); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}

	// The happy path is untouched: a 2-channel program lands on physical
	// channels 2 and 3 of a 3-wide tower, positions remapped with it.
	q, err := p.Remap([]int{2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Channels() != 3 || q.RootChannel() != 2 {
		t.Fatalf("remap: channels %d root %d, want 3 and 2", q.Channels(), q.RootChannel())
	}
	for _, id := range p.t.DataIDs() {
		want := p.Position(id).Channel + 1
		if got := q.Position(id).Channel; got != want {
			t.Errorf("node %s remapped to channel %d, want %d", p.t.Label(id), got, want)
		}
	}
}
