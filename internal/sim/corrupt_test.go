package sim

import (
	"errors"
	"testing"

	"repro/internal/topo"
	"repro/internal/tree"
)

// These tests inject faults into compiled programs and assert the client
// fails loudly instead of looping or returning wrong data — the simulator
// is also the reference implementation of the client protocol, so its
// error paths matter.

func corruptedProgram(t *testing.T) *Program {
	t.Helper()
	res, err := topo.Exact(tree.Fig1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(res.Alloc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestQueryDetectsDanglingPointer(t *testing.T) {
	p := corruptedProgram(t)
	tr := p.Tree()
	// Find the root bucket and corrupt its first child pointer's offset
	// so it lands on the wrong bucket.
	root := tr.Root()
	pos := p.slotOf[root]
	b := &p.buckets[pos.Channel-1][pos.Slot-1]
	if len(b.Children) == 0 {
		t.Fatal("root has no children")
	}
	b.Children[0].Offset += 2

	target := b.Children[0].Target
	// Descend toward the corrupted child (or any data below it).
	var data tree.ID = target
	for !tr.IsData(data) {
		data = tr.Children(data)[0]
	}
	_, err := p.Query(0, data, Power{Active: 1})
	if err == nil {
		t.Fatal("corrupted pointer went undetected")
	}
	if !errors.Is(err, ErrBrokenPointer) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestQueryDetectsMissingRootAtCycleStart(t *testing.T) {
	p := corruptedProgram(t)
	// Swap the root bucket out of slot 1.
	p.buckets[0][0] = Bucket{Node: tree.None, NextCycle: p.cycleLen}
	target := p.Tree().DataIDs()[0]
	// Arrive mid-cycle so the client synchronizes to the (now broken)
	// cycle start.
	_, err := p.Query(1, target, Power{Active: 1})
	if err == nil {
		t.Fatal("missing root went undetected")
	}
	if !errors.Is(err, ErrMissingRoot) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestQueryDetectsPointerToWrongNode(t *testing.T) {
	p := corruptedProgram(t)
	tr := p.Tree()
	root := tr.Root()
	pos := p.slotOf[root]
	b := &p.buckets[pos.Channel-1][pos.Slot-1]
	// Retarget the first pointer at a node that is not there.
	orig := b.Children[0].Target
	b.Children[0].Target = b.Children[1].Target
	b.Children[1].Target = orig

	var data tree.ID = orig
	for !tr.IsData(data) {
		data = tr.Children(data)[0]
	}
	if _, err := p.Query(0, data, Power{Active: 1}); err == nil {
		t.Fatal("swapped pointers went undetected")
	}
}

func TestRangeQueryDetectsEmptyBucket(t *testing.T) {
	b := tree.NewBuilder()
	r := b.AddRoot("r")
	b.AddKeyedData(r, "a", 1, 2)
	b.AddKeyedData(r, "b", 2, 1)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := topo.Exact(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(res.Alloc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Blank out a data bucket the range scan will chase.
	pos := p.slotOf[tr.FindLabel("a")]
	p.buckets[pos.Channel-1][pos.Slot-1] = Bucket{Node: tree.None}
	if _, err := p.QueryRange(0, 1, 2, Power{Active: 1}); err == nil {
		t.Fatal("empty bucket went undetected by range scan")
	}
}
