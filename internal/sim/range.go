package sim

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/pqueue"
	"repro/internal/tree"
)

// RangeResult is the outcome of a range query.
type RangeResult struct {
	Metrics Metrics
	// Keys holds the retrieved keys in retrieval order.
	Keys []int64
}

// pending is a scheduled future bucket read at an absolute slot.
type pending struct {
	at      int // absolute global slot
	channel int
	target  tree.ID
}

// QueryRange retrieves every data item with a key in [lo, hi] (inclusive)
// from a keyed broadcast, supporting the [TY98]-style range workloads.
// The client maintains a frontier of index pointers whose subtrees
// intersect the range and visits them in arrival order; when two needed
// buckets are broadcast in the same slot on different channels, the later
// one is deferred a full cycle (a single-receiver client can only listen
// to one channel per slot).
func (p *Program) QueryRange(arrival int, lo, hi int64, pw Power) (RangeResult, error) {
	return p.QueryRangeFaulty(arrival, lo, hi, pw, FaultConfig{})
}

// QueryRangeFaulty is QueryRange over a lossy channel: a lost or corrupt
// frontier read is re-scheduled at the same cycle slot one cycle later
// (sharing the per-query retry budget), mirroring the netcast range
// client's recovery byte for byte.
func (p *Program) QueryRangeFaulty(arrival int, lo, hi int64, pw Power, fc FaultConfig) (RangeResult, error) {
	var res RangeResult
	if !p.t.Keyed() {
		return res, fmt.Errorf("sim: tree is not keyed")
	}
	if arrival < 0 {
		return res, fmt.Errorf("sim: negative arrival %d", arrival)
	}
	if lo > hi {
		return res, fmt.Errorf("sim: empty range [%d, %d]", lo, hi)
	}

	// Probe and synchronize exactly like a point query.
	now, b, err := p.readAt(&res.Metrics, fc, 1, arrival)
	if err != nil {
		return res, err
	}
	if !(b.RootCopy || (b.Node != tree.None && b.Node == p.t.Root())) {
		if now, b, err = p.readAt(&res.Metrics, fc, 1, now+b.NextCycle); err != nil {
			return res, err
		}
		if !(b.RootCopy || b.Node == p.t.Root()) {
			return res, fmt.Errorf("%w (got %v)", ErrMissingRoot, b.Node)
		}
	}
	descentStart := now
	res.Metrics.ProbeWait = descentStart - arrival

	intersects := func(id tree.ID) bool {
		l, h, ok := p.t.KeyRange(id)
		return ok && l <= hi && h >= lo
	}

	q := pqueue.New(func(a, b pending) bool { return a.at < b.at })
	visit := func(at int, bucket Bucket) error {
		node := bucket.Node
		if node == tree.None {
			return fmt.Errorf("sim: range query read an empty bucket")
		}
		if p.t.IsData(node) {
			k, _ := p.t.Key(node)
			if k >= lo && k <= hi {
				res.Keys = append(res.Keys, k)
			}
			return nil
		}
		for _, c := range bucket.Children {
			if intersects(c.Target) {
				q.Push(pending{at: at + c.Offset, channel: c.Channel, target: c.Target})
			}
		}
		return nil
	}
	if err := visit(now, b); err != nil {
		return res, err
	}

	guard := 0
	maxReads := p.t.NumNodes()*(p.cycleLen+2) + fc.budget() // generous safety bound
	for q.Len() > 0 {
		next := q.Pop()
		// Single receiver: if the slot already passed while we were
		// reading other channels (or collides with the read we just
		// made), catch the bucket on a later cyclic transmission.
		for next.at <= now {
			next.at += p.cycleLen
		}
		if guard++; guard > maxReads {
			return res, fmt.Errorf("sim: range query did not terminate")
		}
		now = next.at
		res.Metrics.TuningTime++
		if o := fc.Model.At(next.channel, next.at); o == fault.Drop || o == fault.Corrupt {
			// Nothing usable this slot: re-schedule the same read; the
			// catch-up bump above lands it one cycle later.
			res.Metrics.Retries++
			if res.Metrics.Retries+res.Metrics.Restarts+res.Metrics.Failovers+res.Metrics.Reconnects > fc.budget() {
				return res, fmt.Errorf("sim: channel %d slot %d: %w after %d redundant wake-ups",
					next.channel, next.at, fault.ErrRetryBudget, res.Metrics.Retries-1)
			}
			q.Push(pending{at: now, channel: next.channel, target: next.target})
			continue
		}
		bucket := p.buckets[next.channel-1][p.slotInCycle(now)-1]
		if bucket.Node != next.target {
			return res, fmt.Errorf("%w: range pointer to %s found %v",
				ErrBrokenPointer, p.t.Label(next.target), bucket.Node)
		}
		if err := visit(now, bucket); err != nil {
			return res, err
		}
	}
	res.Metrics.DataWait = now - descentStart + 1
	res.Metrics.finish(pw)
	return res, nil
}
