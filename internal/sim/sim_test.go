package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/datatree"
	"repro/internal/heuristic"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/tree"
	"repro/internal/workload"
)

var testPower = Power{Active: 1, Doze: 0.05}

// fig1Program compiles the optimal 2-channel allocation of the example.
func fig1Program(t *testing.T, opt Options) *Program {
	t.Helper()
	res, err := topo.Exact(tree.Fig1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(res.Alloc, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileRejectsBadRootPosition(t *testing.T) {
	tr := tree.Fig1()
	// Hand-build an allocation with the root NOT at channel 1 slot 1.
	pos := make([]alloc.Position, tr.NumNodes())
	seq := []string{"1", "2", "A", "B", "3", "E", "4", "C", "D"}
	for i, label := range seq {
		pos[tr.FindLabel(label)] = alloc.Position{Channel: 2, Slot: i + 1}
	}
	a, err := alloc.FromPositions(tr, 2, pos)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(a, Options{}); err == nil {
		t.Fatal("want error for root off channel 1")
	}
}

// TestQueryFromCycleStart: a client arriving exactly at the cycle start
// has zero probe wait and a data wait equal to the target's slot.
func TestQueryFromCycleStart(t *testing.T) {
	p := fig1Program(t, Options{})
	tr := p.Tree()
	for _, d := range tr.DataIDs() {
		m, err := p.Query(0, d, testPower)
		if err != nil {
			t.Fatalf("Query(%s): %v", tr.Label(d), err)
		}
		if m.ProbeWait != 0 {
			t.Errorf("%s: ProbeWait = %d, want 0", tr.Label(d), m.ProbeWait)
		}
		wantWait := 0
		for ch := 1; ch <= p.Channels(); ch++ {
			for s := 1; s <= p.CycleLen(); s++ {
				if p.BucketAt(ch, s).Node == d {
					wantWait = s
				}
			}
		}
		if m.DataWait != wantWait {
			t.Errorf("%s: DataWait = %d, want %d", tr.Label(d), m.DataWait, wantWait)
		}
		// Tuning = root + one bucket per tree level on the path.
		if want := tr.Level(d); m.TuningTime != want {
			t.Errorf("%s: TuningTime = %d, want %d", tr.Label(d), m.TuningTime, want)
		}
	}
}

// TestMidCycleArrivalPaysProbe: arriving later in the cycle costs a probe
// wait until the next cycle start.
func TestMidCycleArrivalPaysProbe(t *testing.T) {
	p := fig1Program(t, Options{})
	tr := p.Tree()
	a := tr.FindLabel("A")
	L := p.CycleLen()
	for arrival := 1; arrival < L; arrival++ {
		m, err := p.Query(arrival, a, testPower)
		if err != nil {
			t.Fatal(err)
		}
		want := L - arrival
		if m.ProbeWait != want {
			t.Errorf("arrival %d: ProbeWait = %d, want %d", arrival, m.ProbeWait, want)
		}
		// One extra tuning for the synchronization probe.
		if m.TuningTime != tr.Level(a)+1 {
			t.Errorf("arrival %d: TuningTime = %d, want %d", arrival, m.TuningTime, tr.Level(a)+1)
		}
	}
}

// TestEvaluateMatchesFormula1: the simulator's exact mean data wait equals
// the allocation's analytic Formula-1 value, and the mean probe wait is
// (L+1)/2 − 1/L·... — exactly (L-1)/2 + 1/L·0 pattern; we check the closed
// form Σ (L-s)/L over s=0..L-1 = (L-1)/2.
func TestEvaluateMatchesFormula1(t *testing.T) {
	res, err := topo.Exact(tree.Fig1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(res.Alloc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Evaluate(p, testPower)
	if err != nil {
		t.Fatal(err)
	}
	if want := res.Alloc.DataWait(); math.Abs(s.DataWait-want) > 1e-9 {
		t.Fatalf("mean DataWait = %v, want Formula 1 = %v", s.DataWait, want)
	}
	L := float64(p.CycleLen())
	if want := (L - 1) / 2; math.Abs(s.ProbeWait-want) > 1e-9 {
		t.Fatalf("mean ProbeWait = %v, want %v", s.ProbeWait, want)
	}
	if s.AccessTime <= s.DataWait {
		t.Fatal("AccessTime should exceed DataWait")
	}
	if s.Energy <= 0 {
		t.Fatal("Energy should be positive")
	}
}

// TestRootCopiesCutProbeWait: filling empty channel-1 slots with root
// replicas reduces the mean probe wait and the energy (one fewer active
// read for clients that land on a copy) and never worsens the access
// time. We use a tree whose 2-channel optimum leaves a channel-1 slot
// empty mid-cycle: r(a:5 y(z(b:4 c:3))) yields slots
// {r},{a,y},{z},{b,c} with z following y onto channel 2.
func TestRootCopiesCutProbeWait(t *testing.T) {
	b := tree.NewBuilder()
	r := b.AddRoot("r")
	b.AddData(r, "a", 5)
	y := b.AddIndex(r, "y")
	z := b.AddIndex(y, "z")
	b.AddData(z, "b", 4)
	b.AddData(z, "c", 3)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := topo.Exact(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Compile(res.Alloc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replicated, err := Compile(res.Alloc, Options{FillWithRootCopies: true})
	if err != nil {
		t.Fatal(err)
	}
	// The replica really occupies a previously-empty channel-1 slot.
	copies := 0
	for s := 1; s <= replicated.CycleLen(); s++ {
		if replicated.BucketAt(1, s).RootCopy {
			copies++
		}
	}
	if copies == 0 {
		t.Fatalf("no root copies inserted; allocation:\n%s", res.Alloc)
	}
	sp, err := Evaluate(plain, testPower)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Evaluate(replicated, testPower)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ProbeWait >= sp.ProbeWait {
		t.Fatalf("root copies did not cut probe wait: %v >= %v", sr.ProbeWait, sp.ProbeWait)
	}
	if sr.Energy >= sp.Energy {
		t.Fatalf("root copies did not cut energy: %v >= %v", sr.Energy, sp.Energy)
	}
	if sr.AccessTime > sp.AccessTime+1e-9 {
		t.Fatalf("root copies worsened access time: %v > %v", sr.AccessTime, sp.AccessTime)
	}
}

// TestQueryKey drives keyed lookups end to end over a Hu-Tucker-shaped
// keyed tree broadcast on one channel.
func TestQueryKey(t *testing.T) {
	b := tree.NewBuilder()
	r := b.AddRoot("r")
	l := b.AddIndex(r, "l")
	b.AddKeyedData(l, "k10", 10, 5)
	b.AddKeyedData(l, "k20", 20, 3)
	rr := b.AddIndex(r, "rr")
	b.AddKeyedData(rr, "k30", 30, 2)
	b.AddKeyedData(rr, "k40", 40, 1)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := datatree.Search(tr, datatree.AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(res.Alloc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []int64{10, 20, 30, 40} {
		m, found, err := p.QueryKey(0, key, testPower)
		if err != nil {
			t.Fatalf("QueryKey(%d): %v", key, err)
		}
		if !found {
			t.Fatalf("QueryKey(%d): not found", key)
		}
		if m.DataWait < 1 {
			t.Fatalf("QueryKey(%d): DataWait = %d", key, m.DataWait)
		}
	}
	// Negative lookups terminate without finding.
	for _, key := range []int64{5, 15, 99} {
		_, found, err := p.QueryKey(0, key, testPower)
		if err != nil {
			t.Fatalf("QueryKey(%d): %v", key, err)
		}
		if found {
			t.Fatalf("QueryKey(%d): spurious hit", key)
		}
	}
	// QueryKey on an unkeyed tree errors.
	unkeyed, err := topo.Exact(tree.Fig1(), 1)
	if err != nil {
		t.Fatal(err)
	}
	up, err := Compile(unkeyed.Alloc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := up.QueryKey(0, 10, testPower); err == nil {
		t.Fatal("want error for QueryKey on unkeyed tree")
	}
}

func TestQueryErrors(t *testing.T) {
	p := fig1Program(t, Options{})
	if _, err := p.Query(-1, p.Tree().FindLabel("A"), testPower); err == nil {
		t.Fatal("want error for negative arrival")
	}
	if _, err := p.Query(0, p.Tree().FindLabel("1"), testPower); err == nil {
		t.Fatal("want error for index-node target")
	}
}

func TestSingleNodeProgram(t *testing.T) {
	b := tree.NewBuilder()
	b.AddRootData("X", 2)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := alloc.FromSequence(tr, []tree.ID{tr.Root()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Query(0, tr.Root(), testPower)
	if err != nil {
		t.Fatal(err)
	}
	if m.ProbeWait != 0 || m.DataWait != 1 || m.TuningTime != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// Property: for random trees and channel counts, every data node is
// retrievable from every arrival phase, the simulated data wait from the
// cycle start equals the allocation slot, and Evaluate matches Formula 1.
func TestQuickSimulatorAgreesWithAnalytic(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		tr, err := workload.Random(workload.RandomConfig{
			NumData: 1 + rng.Intn(10),
			Dist:    stats.Uniform{Lo: 1, Hi: 100},
		}, rng)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(3)
		a, err := heuristic.AllocateSorted(tr, k)
		if err != nil {
			return false
		}
		st := a.Tree()
		for _, withCopies := range []bool{false, true} {
			p, err := Compile(a, Options{FillWithRootCopies: withCopies})
			if err != nil {
				t.Logf("seed=%d: compile: %v", seed, err)
				return false
			}
			for _, d := range st.DataIDs() {
				m, err := p.Query(0, d, testPower)
				if err != nil {
					t.Logf("seed=%d: query %s: %v", seed, st.Label(d), err)
					return false
				}
				if !withCopies && m.DataWait != a.Slot(d) {
					t.Logf("seed=%d: %s wait %d != slot %d", seed, st.Label(d), m.DataWait, a.Slot(d))
					return false
				}
			}
			if !withCopies {
				s, err := Evaluate(p, testPower)
				if err != nil {
					return false
				}
				if math.Abs(s.DataWait-a.DataWait()) > 1e-9 {
					t.Logf("seed=%d: Evaluate %v != Formula1 %v", seed, s.DataWait, a.DataWait())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: root replication never makes any single query slower than the
// plain program by more than a full cycle, and never breaks retrieval.
func TestQuickRootCopiesSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		tr, err := workload.Random(workload.RandomConfig{
			NumData: 2 + rng.Intn(8),
			Dist:    stats.Uniform{Lo: 1, Hi: 100},
		}, rng)
		if err != nil {
			return false
		}
		a, err := heuristic.AllocateSorted(tr, 2)
		if err != nil {
			return false
		}
		p, err := Compile(a, Options{FillWithRootCopies: true})
		if err != nil {
			return false
		}
		st := a.Tree()
		for _, d := range st.DataIDs() {
			for arr := 0; arr < p.CycleLen(); arr++ {
				if _, err := p.Query(arr, d, testPower); err != nil {
					t.Logf("seed=%d arr=%d target=%s: %v", seed, arr, st.Label(d), err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQuery(b *testing.B) {
	res, err := topo.Exact(tree.Fig1(), 2)
	if err != nil {
		b.Fatal(err)
	}
	p, err := Compile(res.Alloc, Options{})
	if err != nil {
		b.Fatal(err)
	}
	target := p.Tree().FindLabel("D")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Query(i%p.CycleLen(), target, testPower); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	tr, err := workload.FullMAry(4, 3, stats.Normal{Mu: 100, Sigma: 20}, stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	a, err := heuristic.AllocateSorted(tr, 3)
	if err != nil {
		b.Fatal(err)
	}
	p, err := Compile(a, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(p, testPower); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEvaluatePerItemConsistent: the weighted average of the per-item
// metrics must equal the aggregate Evaluate, and each item's mean data
// wait equals its slot for non-replicated programs.
func TestEvaluatePerItemConsistent(t *testing.T) {
	res, err := topo.Exact(tree.Fig1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(res.Alloc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	items, err := EvaluatePerItem(p, testPower)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != p.Tree().NumData() {
		t.Fatalf("items = %d", len(items))
	}
	agg, err := Evaluate(p, testPower)
	if err != nil {
		t.Fatal(err)
	}
	var wSum, waitSum, accSum float64
	for _, im := range items {
		wSum += im.Weight
		waitSum += im.Weight * im.DataWait
		accSum += im.Weight * im.AccessTime
		// Non-replicated: data wait is phase-independent and equals the slot.
		id := p.Tree().FindLabel(im.Label)
		if math.Abs(im.DataWait-float64(res.Alloc.Slot(id))) > 1e-9 {
			t.Errorf("%s: mean wait %g != slot %d", im.Label, im.DataWait, res.Alloc.Slot(id))
		}
	}
	if math.Abs(waitSum/wSum-agg.DataWait) > 1e-9 {
		t.Fatalf("per-item wait %g != aggregate %g", waitSum/wSum, agg.DataWait)
	}
	if math.Abs(accSum/wSum-agg.AccessTime) > 1e-9 {
		t.Fatalf("per-item access %g != aggregate %g", accSum/wSum, agg.AccessTime)
	}
}
