package sim

import (
	"errors"
	"fmt"

	"repro/internal/tree"
)

// This file is the analytic twin of batch retrieval: executing a
// precomputed multi-key tune schedule (a BatchPlan, produced by
// internal/retrieval) against the compiled program, under the same fault
// model and shared retry budget as single-key queries. The live
// counterpart is netcast.Client.ReadBatch, kept in lockstep so the two
// report byte-identical metrics under the same seed.

// Batch plan errors. QueryBatch and netcast.Client.ReadBatch wrap these
// with %w so callers can classify failures with errors.Is.
var (
	// ErrBadPlan reports a batch plan that cannot be executed against the
	// program: empty, out-of-range channels, non-monotone per-antenna
	// slots, or a step whose slot does not air the promised node.
	ErrBadPlan = errors.New("sim: invalid batch plan")

	// ErrStalePlan reports a batch plan that crossed an epoch hot swap:
	// the live client heard a bucket stamped with a different epoch than
	// the plan's first read, so the remaining precomputed slots no longer
	// describe what is on the air.
	ErrStalePlan = errors.New("sim: batch plan crossed an epoch swap")
)

// BatchStep is one scheduled read of a batch plan: antenna Antenna tunes
// to Channel and reads the absolute slot Slot, which carries data node
// Node. Steps are ordered by Slot (ties by Antenna).
type BatchStep struct {
	// Antenna identifies which receiver performs the read, 0-based,
	// always 0 for single-antenna plans.
	Antenna int
	// Channel is the 1-based broadcast channel of the read.
	Channel int
	// Slot is the absolute slot of the read, at or after the plan's
	// Arrival.
	Slot int
	// Node is the data node the slot carries.
	Node tree.ID
	// Key and Label identify the item for rendering and live validation;
	// Key is zero on unkeyed trees.
	Key   int64
	Label string
}

// BatchPlan is a conflict-aware tune schedule collecting K data nodes:
// which channel each antenna listens to at which slot, honoring the
// channel-switch cost the planner was configured with. Plans are produced
// by internal/retrieval and executed by Program.QueryBatch (analytic) or
// netcast.Client.ReadBatch (live).
type BatchPlan struct {
	// Arrival is the absolute slot the client arrived at; no step may be
	// scheduled before it.
	Arrival int
	// Antennas is how many receivers the plan assumes (≥ 1). The live
	// TCP path drives exactly one connection and accepts only
	// single-antenna plans.
	Antennas int
	// SwitchCost is the channel-switch penalty in slots the planner
	// honored (a retuned antenna cannot read for SwitchCost slots).
	SwitchCost int
	// Steps are the scheduled reads, ordered by Slot (ties by Antenna).
	Steps []BatchStep
	// Conflicts counts targets not read at their first airing at or after
	// Arrival: two wanted nodes overlapped on the air and one had to spill
	// to a later cycle.
	Conflicts int
	// ExtraCycles is the total number of whole cycles lost to those
	// conflicts (a target read j cycles past its first airing adds j).
	ExtraCycles int
	// Switches counts channel retunes across the schedule (first tune of
	// each antenna is free).
	Switches int
}

// Makespan returns the plan's total span in slots: from arrival through
// the end of the last scheduled read. It is the cost the planners
// minimize, before channel noise adds retry cycles.
func (bp *BatchPlan) Makespan() int {
	if len(bp.Steps) == 0 {
		return 0
	}
	return bp.Steps[len(bp.Steps)-1].Slot - bp.Arrival + 1
}

// BatchPlanner computes a tune schedule collecting the given data nodes,
// for a client arriving at the given absolute slot. internal/retrieval
// provides the implementations (exact DP and greedy).
type BatchPlanner interface {
	PlanBatch(p *Program, arrival int, targets []tree.ID) (*BatchPlan, error)
}

// validatePlan checks a plan is executable against this program: within
// channel range, per-antenna monotone, and every step's slot actually
// airs the promised node.
func (p *Program) validatePlan(plan *BatchPlan) error {
	if plan == nil || len(plan.Steps) == 0 {
		return fmt.Errorf("%w: no steps", ErrBadPlan)
	}
	if plan.Arrival < 0 {
		return fmt.Errorf("%w: negative arrival %d", ErrBadPlan, plan.Arrival)
	}
	if plan.Antennas < 1 {
		return fmt.Errorf("%w: %d antennas", ErrBadPlan, plan.Antennas)
	}
	last := make([]int, plan.Antennas)
	for i := range last {
		last[i] = -1
	}
	for _, st := range plan.Steps {
		if st.Antenna < 0 || st.Antenna >= plan.Antennas {
			return fmt.Errorf("%w: antenna %d outside [0,%d)", ErrBadPlan, st.Antenna, plan.Antennas)
		}
		if st.Channel < 1 || st.Channel > p.k {
			return fmt.Errorf("%w: channel %d outside [1,%d]", ErrBadPlan, st.Channel, p.k)
		}
		if st.Slot < plan.Arrival {
			return fmt.Errorf("%w: slot %d before arrival %d", ErrBadPlan, st.Slot, plan.Arrival)
		}
		if st.Slot <= last[st.Antenna] {
			return fmt.Errorf("%w: antenna %d reads slot %d after slot %d", ErrBadPlan, st.Antenna, st.Slot, last[st.Antenna])
		}
		last[st.Antenna] = st.Slot
		if got := p.buckets[st.Channel-1][p.slotInCycle(st.Slot)-1].Node; got != st.Node {
			return fmt.Errorf("%w: channel %d slot %d airs %v, plan wants %s",
				ErrBadPlan, st.Channel, p.slotInCycle(st.Slot), got, p.t.Label(st.Node))
		}
	}
	return nil
}

// QueryBatch executes a batch plan against the program under the fault
// model: each scheduled read draws from the model, and a lost or corrupt
// read is retried at the same cycle slot one cycle later under the shared
// Retries budget — pushing every later read on the same antenna past it,
// exactly as the live server's cyclic catch-up would. Metrics report the
// whole batch as one session: ProbeWait is arrival to the first item in
// hand, DataWait spans first to last item, TuningTime counts every
// wake-up, and Conflicts/ExtraCycles are copied from the plan. On budget
// exhaustion the partial metrics are returned with an error wrapping
// fault.ErrRetryBudget.
func (p *Program) QueryBatch(plan *BatchPlan, pw Power, fc FaultConfig) (Metrics, error) {
	var m Metrics
	if err := p.validatePlan(plan); err != nil {
		return m, err
	}
	m.Conflicts = plan.Conflicts
	m.ExtraCycles = plan.ExtraCycles
	// prev tracks each antenna's last delivered slot: a scheduled read
	// that retries into a later cycle delays every subsequent read on the
	// same antenna past it (the radio cannot read the past), mirroring the
	// netcast server's cyclic catch-up of passed slots.
	prev := make([]int, plan.Antennas)
	for i := range prev {
		prev[i] = plan.Arrival - 1
	}
	first, lastRead := -1, -1
	for _, st := range plan.Steps {
		s := st.Slot
		for s <= prev[st.Antenna] {
			s += p.cycleLen
		}
		got, b, err := p.readAt(&m, fc, st.Channel, s)
		if err != nil {
			return m, err
		}
		if b.Node != st.Node {
			return m, fmt.Errorf("%w: planned %s at channel %d slot %d, found %v",
				ErrBrokenPointer, p.t.Label(st.Node), st.Channel, p.slotInCycle(got), b.Node)
		}
		prev[st.Antenna] = got
		if first < 0 || got < first {
			first = got
		}
		if got > lastRead {
			lastRead = got
		}
	}
	m.ProbeWait = first - plan.Arrival
	m.DataWait = lastRead - first + 1
	m.finish(pw)
	return m, nil
}

// FoldBatch averages per-arrival batch metrics into a Summary, in slice
// order. EvaluateBatch and the live cross-check tests both fold through
// this one function, so identical metric sequences produce bit-identical
// float summaries.
func FoldBatch(ms []Metrics) Summary {
	var s Summary
	n := float64(len(ms))
	if n == 0 {
		return s
	}
	for _, m := range ms {
		s.ProbeWait += float64(m.ProbeWait) / n
		s.DataWait += float64(m.DataWait) / n
		s.AccessTime += float64(m.AccessTime) / n
		s.TuningTime += float64(m.TuningTime) / n
		s.Retries += float64(m.Retries) / n
		s.Restarts += float64(m.Restarts) / n
		s.Failovers += float64(m.Failovers) / n
		s.Reconnects += float64(m.Reconnects) / n
		s.Conflicts += float64(m.Conflicts) / n
		s.ExtraCycles += float64(m.ExtraCycles) / n
		s.Energy += m.Energy / n
	}
	return s
}

// EvaluateBatch computes the expected batch cost over a uniform arrival
// phase: the planner schedules the same target set at every cycle slot
// and QueryBatch executes each plan under the fault model. Unlike the
// single-key Evaluate there is no weighting across targets — the batch
// itself is the query.
func EvaluateBatch(p *Program, targets []tree.ID, pw Power, fc FaultConfig, planner BatchPlanner) (Summary, error) {
	ms := make([]Metrics, 0, p.cycleLen)
	for a := 0; a < p.cycleLen; a++ {
		plan, err := planner.PlanBatch(p, a, targets)
		if err != nil {
			return Summary{}, fmt.Errorf("sim: batch plan at arrival %d: %w", a, err)
		}
		m, err := p.QueryBatch(plan, pw, fc)
		if err != nil {
			return Summary{}, fmt.Errorf("sim: batch query at arrival %d: %w", a, err)
		}
		ms = append(ms, m)
	}
	return FoldBatch(ms), nil
}
