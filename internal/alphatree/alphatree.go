// Package alphatree constructs the index trees the paper builds on: the
// alphabetic (order-preserving) search trees of Hu & Tucker [HT71], their
// k-nary generalization used by [SV96] so a tree node fits a wireless
// packet of any size, and plain Huffman trees — the [CYW97/SV96] baseline
// that minimizes tuning time but, as the paper notes, cannot serve as a
// search tree because it does not preserve key order.
//
// In all constructions the leaves are the data items in the given order
// and internal nodes are index nodes; the quality measure is the weighted
// path length Σ W(item)·depth(item), which is proportional to the average
// tuning time of a key lookup on the broadcast.
package alphatree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tree"
)

// Item is one keyed, weighted catalog entry. Keys must be strictly
// ascending for the alphabetic constructions.
type Item struct {
	Label  string
	Key    int64
	Weight float64
}

func validate(items []Item, needKeys bool) error {
	if len(items) == 0 {
		return fmt.Errorf("alphatree: no items")
	}
	for i, it := range items {
		if it.Weight < 0 || math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
			return fmt.Errorf("alphatree: item %d has invalid weight %v", i, it.Weight)
		}
		if needKeys && i > 0 && items[i-1].Key >= it.Key {
			return fmt.Errorf("alphatree: keys not strictly ascending at item %d", i)
		}
	}
	return nil
}

// shape is a construction-time tree: leaf >= 0 is an item index,
// otherwise children holds the subtrees left to right.
type shape struct {
	leaf     int
	children []*shape
}

// toTree converts a shape into a tree.Tree, keying data nodes when keyed.
func toTree(items []Item, root *shape, keyed bool) (*tree.Tree, error) {
	b := tree.NewBuilder()
	nextIndex := 1
	var build func(parent tree.ID, s *shape)
	build = func(parent tree.ID, s *shape) {
		if s.leaf >= 0 {
			it := items[s.leaf]
			switch {
			case parent == tree.None && keyed:
				b.AddRootKeyedData(it.Label, it.Key, it.Weight)
			case parent == tree.None:
				b.AddRootData(it.Label, it.Weight)
			case keyed:
				b.AddKeyedData(parent, it.Label, it.Key, it.Weight)
			default:
				b.AddData(parent, it.Label, it.Weight)
			}
			return
		}
		var id tree.ID
		if parent == tree.None {
			id = b.AddRoot(fmt.Sprintf("I%d", nextIndex))
		} else {
			id = b.AddIndex(parent, fmt.Sprintf("I%d", nextIndex))
		}
		nextIndex++
		for _, c := range s.children {
			build(id, c)
		}
	}
	build(tree.None, root)
	return b.Build()
}

// WeightedPathLength returns Σ W(d)·(Level(d)−1): the weighted number of
// index probes needed to reach each data node from the root. Divided by
// the total weight it is the average tuning-time proxy.
func WeightedPathLength(t *tree.Tree) float64 {
	var sum float64
	for _, d := range t.DataIDs() {
		sum += t.Weight(d) * float64(t.Level(d)-1)
	}
	return sum
}

// Huffman builds the classic Huffman tree over the items. The resulting
// tree minimizes WeightedPathLength but does not preserve key order, so
// the result is unkeyed (a Huffman broadcast index cannot answer key
// lookups by range descent — the flaw the paper points out in [CYW97]).
func Huffman(items []Item) (*tree.Tree, error) {
	if err := validate(items, false); err != nil {
		return nil, err
	}
	type hn struct {
		w float64
		s *shape
		n int // insertion order for deterministic ties
	}
	nodes := make([]hn, len(items))
	for i, it := range items {
		nodes[i] = hn{w: it.Weight, s: &shape{leaf: i}, n: i}
	}
	next := len(items)
	for len(nodes) > 1 {
		// Select the two smallest (weight, order) nodes.
		sort.SliceStable(nodes, func(i, j int) bool {
			if nodes[i].w != nodes[j].w {
				return nodes[i].w < nodes[j].w
			}
			return nodes[i].n < nodes[j].n
		})
		a, b := nodes[0], nodes[1]
		merged := hn{
			w: a.w + b.w,
			s: &shape{leaf: -1, children: []*shape{a.s, b.s}},
			n: next,
		}
		next++
		nodes = append([]hn{merged}, nodes[2:]...)
	}
	return toTree(items, nodes[0].s, false)
}

// HuTucker builds the optimal alphabetic binary search tree with the
// Hu–Tucker algorithm [HT71]: a combination phase over compatible pairs,
// level assignment, and stack reconstruction. O(n²). The result preserves
// key order, so it is keyed and usable as a broadcast search index.
func HuTucker(items []Item) (*tree.Tree, error) {
	if err := validate(items, true); err != nil {
		return nil, err
	}
	n := len(items)
	if n == 1 {
		return toTree(items, &shape{leaf: 0}, true)
	}

	// Phase 1: combination. work holds the current node sequence; external
	// nodes block compatibility, internal nodes are transparent.
	type cn struct {
		w        float64
		external bool
		leaf     int
		l, r     *cn
	}
	work := make([]*cn, n)
	for i, it := range items {
		work[i] = &cn{w: it.Weight, external: true, leaf: i}
	}
	for len(work) > 1 {
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				sum := work[i].w + work[j].w
				if sum < best {
					bi, bj, best = i, j, sum
				}
				if work[j].external {
					break // further pairs from i are incompatible
				}
			}
		}
		merged := &cn{w: best, l: work[bi], r: work[bj]}
		work[bi] = merged
		work = append(work[:bj], work[bj+1:]...)
	}

	// Phase 2: leaf levels from the combination tree.
	levels := make([]int, n)
	var walk func(c *cn, depth int)
	walk = func(c *cn, depth int) {
		if c.external {
			levels[c.leaf] = depth
			return
		}
		walk(c.l, depth+1)
		walk(c.r, depth+1)
	}
	walk(work[0], 0)

	// Phase 3: stack reconstruction of the alphabetic tree from levels.
	type se struct {
		s     *shape
		level int
	}
	var stack []se
	for i := 0; i < n; i++ {
		stack = append(stack, se{&shape{leaf: i}, levels[i]})
		for len(stack) >= 2 && stack[len(stack)-1].level == stack[len(stack)-2].level {
			b, a := stack[len(stack)-1], stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			stack = append(stack, se{
				s:     &shape{leaf: -1, children: []*shape{a.s, b.s}},
				level: a.level - 1,
			})
		}
	}
	if len(stack) != 1 || stack[0].level != 0 {
		return nil, fmt.Errorf("alphatree: Hu-Tucker reconstruction failed (stack %d, level %d)",
			len(stack), stack[0].level)
	}
	return toTree(items, stack[0].s, true)
}

// OptimalAlphabetic builds the optimal alphabetic binary tree by the
// O(n³) interval dynamic program (the oracle HuTucker is tested against).
func OptimalAlphabetic(items []Item) (*tree.Tree, error) {
	return OptimalKAry(items, 2)
}

// OptimalKAry builds the optimal alphabetic tree with node fanout at most
// k by dynamic programming over item intervals: an interval either is a
// single leaf or splits into 2..k consecutive sub-intervals, paying the
// interval's total weight once per level. O(n³·k) time.
func OptimalKAry(items []Item, k int) (*tree.Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("alphatree: fanout %d, want >= 2", k)
	}
	if err := validate(items, true); err != nil {
		return nil, err
	}
	n := len(items)
	prefix := make([]float64, n+1)
	for i, it := range items {
		prefix[i+1] = prefix[i] + it.Weight
	}
	w := func(i, j int) float64 { return prefix[j+1] - prefix[i] }

	// cost[i][j]: optimal subtree cost for items i..j (leaf depths count
	// from this subtree's root). split[i][j]: last cut position of the
	// best partition, via parts[i][j][m] bookkeeping folded into a
	// two-level DP: best m-part partition cost over intervals.
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	// partCost[m][i][j]: cheapest way to cover i..j with exactly m
	// already-built subtrees standing side by side.
	partCost := make([][][]float64, k+1)
	partCut := make([][][]int, k+1)
	for m := 1; m <= k; m++ {
		partCost[m] = make([][]float64, n)
		partCut[m] = make([][]int, n)
		for i := range partCost[m] {
			partCost[m][i] = make([]float64, n)
			partCut[m][i] = make([]int, n)
			for j := range partCost[m][i] {
				partCost[m][i][j] = math.Inf(1)
				partCut[m][i][j] = -1
			}
		}
	}
	bestParts := make([][]int, n)
	for i := range bestParts {
		bestParts[i] = make([]int, n)
	}

	for length := 1; length <= n; length++ {
		for i := 0; i+length-1 < n; i++ {
			j := i + length - 1
			if i == j {
				cost[i][j] = 0
				partCost[1][i][j] = 0
				continue
			}
			// partCost[1] over strictly smaller intervals is final since
			// cost for them was computed in earlier lengths.
			best := math.Inf(1)
			bm := -1
			for m := 2; m <= k && m <= length; m++ {
				for cut := i + m - 2; cut < j; cut++ {
					left := partCost[m-1][i][cut]
					right := cost[cut+1][j] // single subtree on the right
					if c := left + right; c < partCost[m][i][j] {
						partCost[m][i][j] = c
						partCut[m][i][j] = cut
					}
				}
				if c := partCost[m][i][j]; c < best {
					best = c
					bm = m
				}
			}
			cost[i][j] = best + w(i, j)
			bestParts[i][j] = bm
			partCost[1][i][j] = cost[i][j]
		}
	}

	var build func(i, j int) *shape
	var parts func(i, j, m int) []*shape
	parts = func(i, j, m int) []*shape {
		if m == 1 {
			return []*shape{build(i, j)}
		}
		cut := partCut[m][i][j]
		return append(parts(i, cut, m-1), build(cut+1, j))
	}
	build = func(i, j int) *shape {
		if i == j {
			return &shape{leaf: i}
		}
		return &shape{leaf: -1, children: parts(i, j, bestParts[i][j])}
	}
	return toTree(items, build(0, n-1), true)
}

// KAry builds a weight-balanced alphabetic k-ary tree greedily: every
// node splits its item range into up to k contiguous groups of roughly
// equal total weight. A fast O(n log n)-ish heuristic counterpart to
// OptimalKAry for large catalogs, as used to fit index nodes to packets.
func KAry(items []Item, k int) (*tree.Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("alphatree: fanout %d, want >= 2", k)
	}
	if err := validate(items, true); err != nil {
		return nil, err
	}
	prefix := make([]float64, len(items)+1)
	for i, it := range items {
		prefix[i+1] = prefix[i] + it.Weight
	}
	var build func(i, j int) *shape
	build = func(i, j int) *shape {
		if i == j {
			return &shape{leaf: i}
		}
		count := j - i + 1
		groups := k
		if groups > count {
			groups = count
		}
		s := &shape{leaf: -1}
		start := i
		for g := 0; g < groups; g++ {
			remainingGroups := groups - g
			if remainingGroups == 1 {
				s.children = append(s.children, build(start, j))
				break
			}
			target := prefix[start] + (prefix[j+1]-prefix[start])/float64(remainingGroups)
			// Advance end to the split closest to the target weight while
			// leaving at least one item per remaining group.
			end := start
			for end < j-(remainingGroups-1) && prefix[end+1] < target {
				end++
			}
			s.children = append(s.children, build(start, end))
			start = end + 1
		}
		return s
	}
	return toTree(items, build(0, len(items)-1), true)
}
