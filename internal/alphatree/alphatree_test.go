package alphatree

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/tree"
)

func mkItems(weights ...float64) []Item {
	items := make([]Item, len(weights))
	for i, w := range weights {
		items[i] = Item{Label: fmt.Sprintf("K%d", i+1), Key: int64(i + 1), Weight: w}
	}
	return items
}

// inorderLeaves returns the data labels in left-to-right order.
func inorderLeaves(t *tree.Tree) []string {
	var out []string
	var walk func(id tree.ID)
	walk = func(id tree.ID) {
		if t.IsData(id) {
			out = append(out, t.Label(id))
			return
		}
		for _, c := range t.Children(id) {
			walk(c)
		}
	}
	walk(t.Root())
	return out
}

func sameOrder(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHuTuckerPreservesOrder(t *testing.T) {
	items := mkItems(5, 40, 2, 30, 1, 25, 7)
	tr, err := HuTucker(items)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(items))
	for i := range items {
		want[i] = items[i].Label
	}
	if got := inorderLeaves(tr); !sameOrder(got, want) {
		t.Fatalf("leaf order = %v, want %v", got, want)
	}
	if !tr.Keyed() {
		t.Fatal("Hu-Tucker tree should be keyed")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHuTuckerKnownInstance(t *testing.T) {
	// Classic example: equal weights give a balanced tree.
	tr, err := HuTucker(mkItems(1, 1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := WeightedPathLength(tr); got != 8 { // 4 leaves at depth 2
		t.Fatalf("WPL = %g, want 8", got)
	}
	if tr.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", tr.Depth())
	}
}

func TestHuTuckerSingleItem(t *testing.T) {
	tr, err := HuTucker(mkItems(7))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 || tr.NumData() != 1 {
		t.Fatalf("single-item tree has %d nodes", tr.NumNodes())
	}
	if got := WeightedPathLength(tr); got != 0 {
		t.Fatalf("WPL = %g, want 0", got)
	}
}

func TestHuffmanOptimalButUnkeyed(t *testing.T) {
	items := mkItems(1, 1, 10, 1)
	tr, err := Huffman(items)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Keyed() {
		t.Fatal("Huffman tree must be unkeyed (it breaks key order)")
	}
	// The weight-10 leaf must sit at depth 1.
	id := tr.FindLabel("K3")
	if got := tr.Level(id); got != 2 {
		t.Fatalf("heavy leaf at level %d, want 2", got)
	}
	// Huffman never exceeds Hu-Tucker (alphabetic adds a constraint).
	ht, err := HuTucker(items)
	if err != nil {
		t.Fatal(err)
	}
	if WeightedPathLength(tr) > WeightedPathLength(ht)+1e-9 {
		t.Fatalf("Huffman WPL %g > Hu-Tucker WPL %g",
			WeightedPathLength(tr), WeightedPathLength(ht))
	}
}

func TestOptimalKAryFanoutValidation(t *testing.T) {
	if _, err := OptimalKAry(mkItems(1, 2), 1); err == nil {
		t.Fatal("want error for fanout 1")
	}
	if _, err := KAry(mkItems(1, 2), 1); err == nil {
		t.Fatal("want error for fanout 1")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := HuTucker(nil); err == nil {
		t.Fatal("want error for empty items")
	}
	bad := mkItems(1, 2)
	bad[1].Key = bad[0].Key // duplicate key
	if _, err := HuTucker(bad); err == nil {
		t.Fatal("want error for non-ascending keys")
	}
	neg := mkItems(1)
	neg[0].Weight = -1
	if _, err := Huffman(neg); err == nil {
		t.Fatal("want error for negative weight")
	}
}

func TestOptimalKAryWiderFanoutNeverWorse(t *testing.T) {
	items := mkItems(3, 1, 4, 1, 5, 9, 2, 6)
	prev := math.Inf(1)
	for k := 2; k <= 5; k++ {
		tr, err := OptimalKAry(items, k)
		if err != nil {
			t.Fatal(err)
		}
		wpl := WeightedPathLength(tr)
		if wpl > prev+1e-9 {
			t.Fatalf("fanout %d WPL %g worse than fanout %d", k, wpl, k-1)
		}
		prev = wpl
	}
}

func TestKAryFanoutRespected(t *testing.T) {
	items := mkItems(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13)
	for k := 2; k <= 4; k++ {
		tr, err := KAry(items, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range tr.Preorder() {
			if len(tr.Children(id)) > k {
				t.Fatalf("fanout %d violated: node %s has %d children",
					k, tr.Label(id), len(tr.Children(id)))
			}
		}
		if got := inorderLeaves(tr); len(got) != len(items) {
			t.Fatalf("lost leaves: %v", got)
		}
	}
}

// Property: Hu-Tucker equals the O(n³) DP optimum (OptimalAlphabetic) on
// random instances — the classical optimality of [HT71].
func TestQuickHuTuckerOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(12)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(100))
		}
		items := mkItems(weights...)
		ht, err := HuTucker(items)
		if err != nil {
			t.Logf("seed=%d: HuTucker: %v", seed, err)
			return false
		}
		if n == 1 {
			return WeightedPathLength(ht) == 0
		}
		opt, err := OptimalAlphabetic(items)
		if err != nil {
			return false
		}
		a, b := WeightedPathLength(ht), WeightedPathLength(opt)
		if math.Abs(a-b) > 1e-9 {
			t.Logf("seed=%d weights=%v: HuTucker WPL %g != DP %g", seed, weights, a, b)
			return false
		}
		// Order preservation.
		want := make([]string, n)
		for i := range items {
			want[i] = items[i].Label
		}
		return sameOrder(inorderLeaves(ht), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: Huffman is a lower bound for every alphabetic construction,
// and the greedy KAry respects order and is never better than OptimalKAry.
func TestQuickConstructionHierarchy(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(10)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(50))
		}
		items := mkItems(weights...)
		huff, err := Huffman(items)
		if err != nil {
			return false
		}
		ht, err := HuTucker(items)
		if err != nil {
			return false
		}
		k := 2 + rng.Intn(3)
		optK, err := OptimalKAry(items, k)
		if err != nil {
			return false
		}
		greedyK, err := KAry(items, k)
		if err != nil {
			return false
		}
		wHuff := WeightedPathLength(huff)
		wHT := WeightedPathLength(ht)
		wOptK := WeightedPathLength(optK)
		wGreedy := WeightedPathLength(greedyK)
		if wHuff > wHT+1e-9 {
			t.Logf("seed=%d: huffman %g > hu-tucker %g", seed, wHuff, wHT)
			return false
		}
		if wOptK > wHT+1e-9 { // wider-or-equal fanout never worse than binary
			t.Logf("seed=%d: optK %g > binary %g", seed, wOptK, wHT)
			return false
		}
		if wGreedy < wOptK-1e-9 {
			t.Logf("seed=%d: greedy %g < optimal %g", seed, wGreedy, wOptK)
			return false
		}
		want := make([]string, n)
		for i := range items {
			want[i] = items[i].Label
		}
		return sameOrder(inorderLeaves(greedyK), want) && sameOrder(inorderLeaves(optK), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHuTucker64(b *testing.B) {
	rng := stats.NewRNG(1)
	weights := make([]float64, 64)
	for i := range weights {
		weights[i] = float64(1 + rng.Intn(100))
	}
	items := mkItems(weights...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := HuTucker(items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalKAry32(b *testing.B) {
	rng := stats.NewRNG(1)
	weights := make([]float64, 32)
	for i := range weights {
		weights[i] = float64(1 + rng.Intn(100))
	}
	items := mkItems(weights...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalKAry(items, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDepthLimitedBasics(t *testing.T) {
	items := mkItems(10, 1, 1, 1, 1, 1, 1, 10)
	// Generous budget: must match the unconstrained optimum.
	free, err := OptimalKAry(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := OptimalKAryDepthLimited(items, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if WeightedPathLength(loose) != WeightedPathLength(free) {
		t.Fatalf("loose budget WPL %g != unconstrained %g",
			WeightedPathLength(loose), WeightedPathLength(free))
	}
	// Tight budget: 8 items at fanout 2 need depth 3 exactly (a complete
	// binary tree), and every leaf must respect it.
	tight, err := OptimalKAryDepthLimited(items, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range tight.DataIDs() {
		if tight.Level(d)-1 > 3 {
			t.Fatalf("leaf %s at depth %d > 3", tight.Label(d), tight.Level(d)-1)
		}
	}
	if WeightedPathLength(tight) < WeightedPathLength(free) {
		t.Fatal("constrained tree beat the unconstrained optimum")
	}
	// Impossible budget errors.
	if _, err := OptimalKAryDepthLimited(items, 2, 2); err == nil {
		t.Fatal("want error: 8 items cannot fit in depth 2 at fanout 2")
	}
}

func TestDepthLimitedArgErrors(t *testing.T) {
	items := mkItems(1, 2)
	if _, err := OptimalKAryDepthLimited(items, 1, 3); err == nil {
		t.Fatal("want fanout error")
	}
	if _, err := OptimalKAryDepthLimited(items, 2, -1); err == nil {
		t.Fatal("want depth error")
	}
	single := mkItems(5)
	tr, err := OptimalKAryDepthLimited(single, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 {
		t.Fatal("single item should be a bare leaf at any budget")
	}
}

// Property: the depth-limited optimum preserves key order, respects the
// budget, is monotone in the budget, and meets the unconstrained DP when
// the budget is slack.
func TestQuickDepthLimited(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(10)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(50))
		}
		items := mkItems(weights...)
		k := 2 + rng.Intn(2)
		// Minimal feasible depth: ceil(log_k n).
		minD := 0
		for c := 1; c < n; c *= k {
			minD++
		}
		prev := math.Inf(1)
		for d := minD; d <= minD+3; d++ {
			tr, err := OptimalKAryDepthLimited(items, k, d)
			if err != nil {
				t.Logf("seed=%d n=%d k=%d d=%d: %v", seed, n, k, d, err)
				return false
			}
			for _, leaf := range tr.DataIDs() {
				if tr.Level(leaf)-1 > d {
					return false
				}
			}
			want := make([]string, n)
			for i := range items {
				want[i] = items[i].Label
			}
			if !sameOrder(inorderLeaves(tr), want) {
				return false
			}
			wpl := WeightedPathLength(tr)
			if wpl > prev+1e-9 {
				t.Logf("seed=%d: WPL increased with budget (%g -> %g at d=%d)", seed, prev, wpl, d)
				return false
			}
			prev = wpl
		}
		free, err := OptimalKAry(items, k)
		if err != nil {
			return false
		}
		slack, err := OptimalKAryDepthLimited(items, k, n)
		if err != nil {
			return false
		}
		return math.Abs(WeightedPathLength(slack)-WeightedPathLength(free)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
