package alphatree

import (
	"fmt"
	"math"

	"repro/internal/tree"
)

// OptimalKAryDepthLimited builds the optimal alphabetic tree with node
// fanout at most k under the additional constraint that no data item sits
// more than maxDepth index probes from the root — a hard bound on the
// worst-case tuning time, which matters when the client's receiver can
// only stay powered for a fixed number of wake-ups per lookup.
//
// Dynamic program: best[d][i][j] is the optimal weighted-path-length of a
// subtree over items i..j whose height may not exceed d. A single item
// costs 0 at any budget; an interval splits into 2..k consecutive parts,
// each built with budget d−1, paying the interval weight once. O(D·n³·k).
//
// It returns an error when the catalog cannot fit: k^maxDepth < n.
func OptimalKAryDepthLimited(items []Item, k, maxDepth int) (*tree.Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("alphatree: fanout %d, want >= 2", k)
	}
	if maxDepth < 0 {
		return nil, fmt.Errorf("alphatree: maxDepth %d, want >= 0", maxDepth)
	}
	if err := validate(items, true); err != nil {
		return nil, err
	}
	n := len(items)
	// Capacity check (guarding against overflow for large budgets).
	capacity := 1
	for d := 0; d < maxDepth && capacity < n; d++ {
		capacity *= k
	}
	if capacity < n {
		return nil, fmt.Errorf("alphatree: %d items cannot fit in depth %d at fanout %d",
			n, maxDepth, k)
	}
	if n == 1 {
		return toTree(items, &shape{leaf: 0}, true)
	}

	prefix := make([]float64, n+1)
	for i, it := range items {
		prefix[i+1] = prefix[i] + it.Weight
	}
	w := func(i, j int) float64 { return prefix[j+1] - prefix[i] }

	// best[d][i][j], bestParts[d][i][j], partCut[d][m][i][j] — flattened
	// maps keyed per budget to keep memory proportional to what is used.
	type layer struct {
		cost     [][]float64
		parts    [][]int
		partCost [][][]float64 // [m][i][j]
		partCut  [][][]int
	}
	newMatrix := func(fill float64) [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
			for j := range m[i] {
				m[i][j] = fill
			}
		}
		return m
	}
	newIntMatrix := func() [][]int {
		m := make([][]int, n)
		for i := range m {
			m[i] = make([]int, n)
			for j := range m[i] {
				m[i][j] = -1
			}
		}
		return m
	}

	layers := make([]*layer, maxDepth+1)
	for d := 0; d <= maxDepth; d++ {
		ly := &layer{
			cost:     newMatrix(math.Inf(1)),
			parts:    newIntMatrix(),
			partCost: make([][][]float64, k+1),
			partCut:  make([][][]int, k+1),
		}
		for m := 1; m <= k; m++ {
			ly.partCost[m] = newMatrix(math.Inf(1))
			ly.partCut[m] = newIntMatrix()
		}
		for i := 0; i < n; i++ {
			ly.cost[i][i] = 0
			ly.partCost[1][i][i] = 0
		}
		layers[d] = ly
	}

	for d := 1; d <= maxDepth; d++ {
		ly, below := layers[d], layers[d-1]
		for length := 2; length <= n; length++ {
			for i := 0; i+length-1 < n; i++ {
				j := i + length - 1
				// partCost[m][i][j] at budget d-1: m side-by-side subtrees.
				// Build increasing m using this layer's own part tables
				// over the *below* layer's subtree costs.
				best := math.Inf(1)
				bm := -1
				for m := 2; m <= k && m <= length; m++ {
					for cut := i + m - 2; cut < j; cut++ {
						left := ly.partCost[m-1][i][cut]
						right := below.cost[cut+1][j]
						if c := left + right; c < ly.partCost[m][i][j] {
							ly.partCost[m][i][j] = c
							ly.partCut[m][i][j] = cut
						}
					}
					if c := ly.partCost[m][i][j]; c < best {
						best = c
						bm = m
					}
				}
				if !math.IsInf(best, 1) {
					ly.cost[i][j] = best + w(i, j)
					ly.parts[i][j] = bm
				}
				ly.partCost[1][i][j] = below.cost[i][j]
			}
		}
		// partCost[1] over single items must reference the lower layer too
		// (a lone subtree inside a partition also spends one level).
		for i := 0; i < n; i++ {
			ly.partCost[1][i][i] = 0
		}
	}

	top := layers[maxDepth]
	if math.IsInf(top.cost[0][n-1], 1) {
		return nil, fmt.Errorf("alphatree: no tree of depth %d exists for %d items", maxDepth, n)
	}

	var build func(d, i, j int) *shape
	var parts func(d, i, j, m int) []*shape
	parts = func(d, i, j, m int) []*shape {
		if m == 1 {
			return []*shape{build(d-1, i, j)}
		}
		cut := layers[d].partCut[m][i][j]
		return append(parts(d, i, cut, m-1), build(d-1, cut+1, j))
	}
	build = func(d, i, j int) *shape {
		if i == j {
			return &shape{leaf: i}
		}
		// Find the shallowest layer <= d realizing the optimal cost, so
		// reconstruction always has a valid split recorded.
		return &shape{leaf: -1, children: parts(d, i, j, layers[d].parts[i][j])}
	}
	return toTree(items, build(maxDepth, 0, n-1), true)
}
