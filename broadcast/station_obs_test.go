package broadcast_test

import (
	"testing"

	"repro/broadcast"
	"repro/internal/obs"
)

// TestStationPublishesObs pins the station's instrumentation across a
// full serve-and-rebuild cycle: hit/miss counters, period and install
// counters, the plan-latency histogram fed by the injected clock, and
// the search-effort counters bridged from the solver.
func TestStationPublishesObs(t *testing.T) {
	r := obs.New()
	var now int64
	st, err := broadcast.NewStation(universe(20), broadcast.StationConfig{
		HotSize:  4,
		Decay:    0.3,
		Obs:      r,
		NowNanos: func() int64 { now += 500; return now },
	})
	if err != nil {
		t.Fatal(err)
	}

	// One hit (key 1 is hottest, on air) and one miss.
	if !st.Record(1) {
		t.Fatal("key 1 should be on air")
	}
	if st.Record(20) {
		t.Fatal("key 20 should be off air")
	}
	// Shift demand onto cold keys until a period rebuild triggers.
	rebuilt := false
	for period := 0; period < 8 && !rebuilt; period++ {
		for i := 0; i < 50; i++ {
			for key := int64(15); key <= 20; key++ {
				st.Record(key)
			}
		}
		var err error
		if rebuilt, _, err = st.EndPeriod(); err != nil {
			t.Fatal(err)
		}
	}
	if !rebuilt {
		t.Fatal("demand shift never triggered a rebuild")
	}

	s := r.Snapshot()
	if s.Counters["station_hits_total"] < 1 || s.Counters["station_misses_total"] < 1 {
		t.Fatalf("hit/miss counters %+v", s.Counters)
	}
	if s.Counters["station_periods_total"] < 1 {
		t.Fatalf("no periods counted: %+v", s.Counters)
	}
	// NewStation plans+installs once, the rebuild a second time.
	if s.Counters["station_plans_total"] < 2 || s.Counters["station_installs_total"] < 2 {
		t.Fatalf("plan/install counters %+v", s.Counters)
	}
	if g := s.Gauges["station_hot_keys"]; g != 4 {
		t.Fatalf("station_hot_keys = %d, want 4", g)
	}
	// Each plan spans exactly two reads of the 500ns-step clock.
	h := s.Histograms["station_plan_ns"]
	if h.Count != s.Counters["station_plans_total"] || h.Min != 500 || h.Max != 500 {
		t.Fatalf("plan latency histogram %+v", h)
	}
	// The exact solver ran (4 items is far under the exact-search limit),
	// so the bridged search-effort counters moved.
	if s.Counters["search_generated_total"] == 0 || s.Gauges["search_peak_queue"] == 0 {
		t.Fatalf("solver effort not bridged: counters %+v gauges %+v", s.Counters, s.Gauges)
	}
	// The trace carries the period/plan/install schedule.
	kinds := map[string]int{}
	for _, e := range r.Events(0) {
		kinds[e.Kind]++
	}
	if kinds["period_close"] < 1 || kinds["plan"] < 2 || kinds["install"] < 2 {
		t.Fatalf("trace kinds %+v", kinds)
	}
}
