package broadcast

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/epoch"
	"repro/internal/hotset"
	"repro/internal/obs"
	"repro/internal/searchstats"
)

// StationConfig tunes a Station.
type StationConfig struct {
	// HotSize is how many items fit on the air (the broadcast's data
	// capacity). Required.
	HotSize int
	// Channels and Fanout shape the broadcast (defaults: 1 channel,
	// fanout 2).
	Channels, Fanout int
	// Decay ages demand counters each period; in (0,1), default 0.5.
	Decay float64
	// MinChurn is how many hot-set replacements it takes to trigger a
	// rebuild at the end of a period (default 1: any change rebuilds).
	MinChurn int
	// MaxExpanded caps each rebuild's exact-search effort (0 =
	// unlimited). When a rebuild trips the cap it falls back to the
	// sorting heuristic instead of failing — a station must always stay
	// on the air.
	MaxExpanded int
	// Obs receives the station's counters (periods, hits, misses, plans,
	// installs, limit fallbacks), the station_plan_ns latency histogram,
	// per-rebuild search-effort counters bridged from the solver, and
	// period/plan/install trace events; nil disables instrumentation.
	Obs *obs.Registry
	// NowNanos is the clock used to time plans. Defaults to the wall
	// clock; injectable so tests observe deterministic latencies.
	NowNanos func() int64
}

// stationObs bundles the station's instrument handles; all handles are
// nil-safe, so a zero bundle (no registry) makes every call a no-op.
type stationObs struct {
	reg                                               *obs.Registry
	periods, hits, misses, plans, installs, fallbacks *obs.Counter
	planNs                                            *obs.Histogram
	hot                                               *obs.Gauge
}

func newStationObs(r *obs.Registry) stationObs {
	return stationObs{
		reg:       r,
		periods:   r.Counter("station_periods_total"),
		hits:      r.Counter("station_hits_total"),
		misses:    r.Counter("station_misses_total"),
		plans:     r.Counter("station_plans_total"),
		installs:  r.Counter("station_installs_total"),
		fallbacks: r.Counter("station_limit_fallbacks_total"),
		planNs:    r.Histogram("station_plan_ns", obs.DefaultLatencyBounds),
		hot:       r.Gauge("station_hot_keys"),
	}
}

// Station runs the complete server loop of a broadcast system — all three
// research directions of the paper's Section 1 in one object:
//
//  1. determining the data for broadcasting: demand over an arbitrary key
//     universe is tracked with decayed counters and the hottest HotSize
//     items are selected each period;
//  2. scheduling: the selected items are allocated over the channels by
//     the optimal/heuristic solver;
//  3. indexing: the broadcast carries the alphabetic index tree clients
//     descend.
//
// Keys outside the current hot set are misses — in a deployment they
// would be served by the on-demand uplink. All methods are safe for
// concurrent use.
type Station struct {
	cfg    StationConfig
	est    *hotset.Estimator
	labels map[int64]string
	om     stationObs
	now    func() int64

	mu  sync.Mutex
	hot []hotset.HotKey
	// hotKeys indexes s.hot so the per-request Record/OnAir checks are
	// O(1) instead of a scan of the hot set.
	hotKeys  map[int64]struct{}
	sched    *Schedule
	rebuilds int
	hits     int
	misses   int
}

// HotKey is one selected item of a station's hot set: its key and the
// decayed demand estimate that put it on the air.
type HotKey = hotset.HotKey

// NewStation creates a station over the given key universe. The items'
// weights seed the demand estimator so the first period starts from the
// assumed popularity rather than from nothing.
func NewStation(universe []Item, cfg StationConfig) (*Station, error) {
	if len(universe) == 0 {
		return nil, fmt.Errorf("broadcast: empty universe")
	}
	if cfg.HotSize < 1 {
		return nil, fmt.Errorf("broadcast: HotSize %d, want >= 1", cfg.HotSize)
	}
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = 2
	}
	if cfg.MinChurn == 0 {
		cfg.MinChurn = 1
	}
	est, err := hotset.New(hotset.Config{Decay: cfg.Decay})
	if err != nil {
		return nil, err
	}
	s := &Station{cfg: cfg, est: est, labels: make(map[int64]string, len(universe)),
		om: newStationObs(cfg.Obs), now: cfg.NowNanos}
	if s.now == nil {
		s.now = func() int64 { return time.Now().UnixNano() }
	}
	for _, it := range universe {
		if _, dup := s.labels[it.Key]; dup {
			return nil, fmt.Errorf("broadcast: duplicate key %d", it.Key)
		}
		s.labels[it.Key] = it.Label
		// Seed the prior: one synthetic access per unit of weight.
		for i := 0.0; i < it.Weight; i++ {
			est.Record(it.Key)
		}
	}
	sel, _ := est.Select(cfg.HotSize)
	sched, err := s.PlanSelection(sel)
	if err != nil {
		return nil, err
	}
	s.Install(sel, sched)
	return s, nil
}

// Record counts one client request. It reports whether the key is
// currently on the air (a broadcast hit) or must be served on demand.
func (s *Station) Record(key int64) (onAir bool) {
	s.est.Record(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.hotKeys[key]; ok {
		s.hits++
		s.om.hits.Inc()
		return true
	}
	s.misses++
	s.om.misses.Inc()
	return false
}

// EndPeriod closes one broadcast period: demand decays, the hot set is
// re-selected, and the broadcast is rebuilt when at least MinChurn items
// changed. It reports whether a rebuild happened and the new selection's
// demand coverage. The rebuilt broadcast carries exactly the selection
// that passed the churn check — the selection is threaded through
// PlanSelection/Install rather than re-drawn.
//
// EndPeriod is the synchronous composition of the three phases a live
// tower runs separately: ClosePeriod (decay + select), PlanSelection
// (solve, possibly in a background planner goroutine) and Install (swap
// the result in).
func (s *Station) EndPeriod() (rebuilt bool, coverage float64, err error) {
	next, coverage := s.ClosePeriod()
	s.mu.Lock()
	churn := hotset.Churn(s.hot, next)
	s.mu.Unlock()
	if churn < s.cfg.MinChurn {
		return false, coverage, nil
	}
	sched, err := s.PlanSelection(next)
	if err != nil {
		return false, coverage, err
	}
	s.Install(next, sched)
	return true, coverage, nil
}

// ClosePeriod ages the demand counters and selects the next period's hot
// set, returning it with its demand coverage. It does not touch the
// broadcast — pass the selection to PlanSelection/Install (or let
// EndPeriod do all three).
func (s *Station) ClosePeriod() ([]HotKey, float64) {
	s.est.Tick()
	sel, coverage := s.est.Select(s.cfg.HotSize)
	s.om.periods.Inc()
	s.om.reg.Emit("period_close",
		obs.A("hot", int64(len(sel))),
		obs.A("coverage_ppm", int64(coverage*1e6)))
	return sel, coverage
}

// PlanSelection re-optimizes the broadcast for exactly the given
// selection. It mutates no station state, so a live tower can run it in
// a background planner goroutine while the current schedule stays on the
// air; sel is sorted by key in place.
func (s *Station) PlanSelection(sel []HotKey) (*Schedule, error) {
	if len(sel) == 0 {
		return nil, fmt.Errorf("broadcast: no demand tracked; nothing to put on air")
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].Key < sel[j].Key })
	items := make([]Item, len(sel))
	for i, h := range sel {
		label := s.labels[h.Key]
		if label == "" {
			label = fmt.Sprintf("key-%d", h.Key)
		}
		w := h.Weight
		if w <= 0 {
			w = 1
		}
		items[i] = Item{Label: label, Key: h.Key, Weight: w}
	}
	t, err := NewCatalogTree(items, s.cfg.Fanout)
	if err != nil {
		return nil, err
	}
	start := s.now()
	sched, err := Optimize(t, Options{
		Channels:        s.cfg.Channels,
		Polish:          true,
		MaxExpanded:     s.cfg.MaxExpanded,
		FallbackOnLimit: true,
	})
	if err != nil {
		return nil, err
	}
	elapsed := s.now() - start
	s.om.plans.Inc()
	s.om.planNs.Observe(elapsed)
	searchstats.Publish(s.om.reg, sched.Stats)
	optimal := int64(0)
	if sched.Optimal {
		optimal = 1
	}
	if sched.LimitErr != nil {
		s.om.fallbacks.Inc()
	}
	s.om.reg.Emit("plan", obs.A("optimal", optimal), obs.A("ns", elapsed))
	return sched, nil
}

// InstallPlanned puts a planned schedule on the air for the given
// selection, surfacing a failed plan instead of silently keeping the
// stale program: a nil schedule — what an async planner hands over when
// its build errored — is rejected with an error wrapping
// epoch.ErrBuildFailed, and the previously installed schedule stays on
// the air. Callers distinguish the case with errors.Is.
func (s *Station) InstallPlanned(sel []HotKey, sched *Schedule) error {
	if sched == nil {
		return fmt.Errorf("%w: station keeps the stale schedule on the air", epoch.ErrBuildFailed)
	}
	s.Install(sel, sched)
	return nil
}

// Install puts a planned schedule on the air for the given selection.
func (s *Station) Install(sel []HotKey, sched *Schedule) {
	keys := make(map[int64]struct{}, len(sel))
	for _, h := range sel {
		keys[h.Key] = struct{}{}
	}
	s.mu.Lock()
	s.hot = sel
	s.hotKeys = keys
	s.sched = sched
	s.rebuilds++
	s.mu.Unlock()
	s.om.installs.Inc()
	s.om.hot.Set(int64(len(sel)))
	s.om.reg.Emit("install", obs.A("hot", int64(len(sel))))
}

// Schedule returns the current broadcast schedule.
func (s *Station) Schedule() *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched
}

// OnAir reports whether key is in the current hot set.
func (s *Station) OnAir(key int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.hotKeys[key]
	return ok
}

// Stats returns lifetime counters: broadcast hits, on-demand misses, and
// schedule rebuilds.
func (s *Station) Stats() (hits, misses, rebuilds int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.rebuilds
}
