package broadcast

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// PlannerConfig tunes the online re-optimization loop (the paper's first
// future-work direction: reflecting changing access patterns).
type PlannerConfig struct {
	// Channels and Fanout shape the broadcast; both default sensibly
	// (1 channel, fanout 2).
	Channels int
	Fanout   int
	// Strategy for each replan; Auto by default.
	Strategy Strategy
	// Drift is the relative weight change that triggers a replan in
	// MaybeReplan; defaults to 0.2 (20% of total weight).
	Drift float64
	// Decay exponentially ages old weights on each replan: new weight =
	// Decay·old + observed accesses. Defaults to 0.5.
	Decay float64
	// MaxExpanded caps each replan's exact-search effort (0 = unlimited).
	// When a replan trips the cap it falls back to the sorting heuristic
	// instead of failing — a live planner must always produce a schedule.
	MaxExpanded int
}

func (c PlannerConfig) withDefaults() PlannerConfig {
	if c.Channels == 0 {
		c.Channels = 1
	}
	if c.Fanout == 0 {
		c.Fanout = 2
	}
	if c.Drift == 0 {
		c.Drift = 0.2
	}
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	return c
}

// Planner maintains a live broadcast schedule over a keyed catalog,
// counting client accesses and re-optimizing once the observed popularity
// drifts far enough from the weights the current schedule was built for.
// All methods are safe for concurrent use.
type Planner struct {
	cfg PlannerConfig

	mu       sync.Mutex
	items    []Item
	byKey    map[int64]int
	observed []float64 // accesses since the last replan
	sched    *Schedule
	replans  int
	live     []int // channel subset for subsequent replans; nil = all
}

// NewPlanner builds the initial schedule for the catalog.
func NewPlanner(items []Item, cfg PlannerConfig) (*Planner, error) {
	cfg = cfg.withDefaults()
	if len(items) == 0 {
		return nil, fmt.Errorf("broadcast: empty catalog")
	}
	p := &Planner{
		cfg:      cfg,
		items:    append([]Item(nil), items...),
		byKey:    make(map[int64]int, len(items)),
		observed: make([]float64, len(items)),
	}
	sort.SliceStable(p.items, func(i, j int) bool { return p.items[i].Key < p.items[j].Key })
	for i, it := range p.items {
		if _, dup := p.byKey[it.Key]; dup {
			return nil, fmt.Errorf("broadcast: duplicate key %d", it.Key)
		}
		p.byKey[it.Key] = i
	}
	if err := p.replan(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Planner) replan() error {
	t, err := NewCatalogTree(p.items, p.cfg.Fanout)
	if err != nil {
		return err
	}
	sched, err := Optimize(t, Options{
		Channels:        p.cfg.Channels,
		Strategy:        p.cfg.Strategy,
		MaxExpanded:     p.cfg.MaxExpanded,
		FallbackOnLimit: true,
		LiveChannels:    p.live,
	})
	if err != nil {
		return err
	}
	p.sched = sched
	p.replans++
	for i := range p.observed {
		p.observed[i] = 0
	}
	return nil
}

// SetLive restricts every subsequent replan to the given live-channel
// subset (nil restores full width) and rebuilds the schedule immediately
// — the tower's response to a channel going dark or coming back. The
// subset must be strictly increasing within [1, Channels].
func (p *Planner) SetLive(live []int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if live == nil {
		p.live = nil
	} else {
		p.live = append([]int{}, live...)
	}
	return p.replan()
}

// Live returns the live-channel subset replans are restricted to (nil
// when all channels are live).
func (p *Planner) Live() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// Schedule returns the current broadcast schedule.
func (p *Planner) Schedule() *Schedule {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sched
}

// Replans returns how many times a schedule has been built (>= 1).
func (p *Planner) Replans() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replans
}

// RecordAccess counts one client access to the item with the given key.
// Unknown keys are ignored.
func (p *Planner) RecordAccess(key int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i, ok := p.byKey[key]; ok {
		p.observed[i]++
	}
}

// Drift returns the total variation distance between the normalized
// scheduled weights and the normalized observed access counts (0 when
// nothing was observed).
func (p *Planner) Drift() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.driftLocked()
}

func (p *Planner) driftLocked() float64 {
	var totalW, totalO float64
	for i := range p.items {
		totalW += p.items[i].Weight
		totalO += p.observed[i]
	}
	if totalO == 0 || totalW == 0 {
		return 0
	}
	var d float64
	for i := range p.items {
		d += math.Abs(p.items[i].Weight/totalW - p.observed[i]/totalO)
	}
	return d / 2 // total variation distance in [0, 1]
}

// MaybeReplan folds the observed accesses into the weights and rebuilds
// the schedule when the drift threshold is exceeded. It reports whether a
// replan happened.
func (p *Planner) MaybeReplan() (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.driftLocked() < p.cfg.Drift {
		return false, nil
	}
	for i := range p.items {
		p.items[i].Weight = p.cfg.Decay*p.items[i].Weight + p.observed[i]
		if p.items[i].Weight <= 0 {
			p.items[i].Weight = 1
		}
	}
	if err := p.replan(); err != nil {
		return false, err
	}
	return true, nil
}
