package broadcast_test

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/broadcast"
	"repro/internal/stats"
	"repro/internal/tree"
)

var pw = broadcast.Power{Active: 1, Doze: 0.05}

func catalog(weights ...float64) []broadcast.Item {
	items := make([]broadcast.Item, len(weights))
	for i, w := range weights {
		items[i] = broadcast.Item{Label: string(rune('a' + i)), Key: int64(10 * (i + 1)), Weight: w}
	}
	return items
}

func TestEndToEndKeyedLookup(t *testing.T) {
	items := catalog(50, 10, 30, 5, 25, 40, 8, 2)
	tr, err := broadcast.NewCatalogTree(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := broadcast.Optimize(tr, broadcast.Options{Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Optimal {
		t.Fatal("8-item tree should be solved exactly")
	}
	for _, it := range items {
		m, found, err := sched.QueryKey(0, it.Key, pw)
		if err != nil {
			t.Fatalf("QueryKey(%d): %v", it.Key, err)
		}
		if !found {
			t.Fatalf("key %d not found", it.Key)
		}
		if m.DataWait < 1 || m.DataWait > sched.CycleLen() {
			t.Fatalf("key %d: DataWait %d out of range", it.Key, m.DataWait)
		}
	}
	if _, found, _ := sched.QueryKey(0, 15, pw); found {
		t.Fatal("absent key reported found")
	}
	avg, err := sched.Measure(pw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.DataWait-sched.DataWait()) > 1e-9 {
		t.Fatalf("measured %v != analytic %v", avg.DataWait, sched.DataWait())
	}
}

func TestOptimizeDefaultsToOneChannel(t *testing.T) {
	sched, err := broadcast.Optimize(tree.Fig1(), broadcast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sched.DataWait()-391.0/70.0) > 1e-9 {
		t.Fatalf("DataWait = %v, want %v", sched.DataWait(), 391.0/70.0)
	}
	if sched.Used != broadcast.DataTree {
		t.Fatalf("Used = %v, want data-tree", sched.Used)
	}
}

func TestOptimizeReplicateRoot(t *testing.T) {
	items := catalog(9, 7, 5, 3, 1)
	tr, err := broadcast.NewCatalogTree(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := broadcast.Optimize(tr, broadcast.Options{Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	repl, err := broadcast.Optimize(tr, broadcast.Options{Channels: 2, ReplicateRoot: true})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := plain.Measure(pw)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := repl.Measure(pw)
	if err != nil {
		t.Fatal(err)
	}
	if mr.ProbeWait > mp.ProbeWait+1e-9 {
		t.Fatalf("replication worsened probe wait: %v > %v", mr.ProbeWait, mp.ProbeWait)
	}
}

func TestNewCatalogTreeFanouts(t *testing.T) {
	items := catalog(5, 4, 3, 2, 1, 6, 7, 8, 9)
	for fanout := 2; fanout <= 4; fanout++ {
		tr, err := broadcast.NewCatalogTree(items, fanout)
		if err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		if tr.NumData() != len(items) {
			t.Fatalf("fanout %d: %d leaves", fanout, tr.NumData())
		}
		for _, id := range tr.Preorder() {
			if len(tr.Children(id)) > fanout {
				t.Fatalf("fanout %d violated", fanout)
			}
		}
	}
	if _, err := broadcast.NewCatalogTree(items, 1); err == nil {
		t.Fatal("want error for fanout 1")
	}
}

func TestParseTreeRoundTrip(t *testing.T) {
	tr := tree.Fig1()
	data, err := tr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := broadcast.ParseTree(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != tr.NumNodes() {
		t.Fatal("round trip lost nodes")
	}
}

func TestPlannerReplansOnDrift(t *testing.T) {
	items := catalog(100, 100, 100, 100)
	p, err := broadcast.NewPlanner(items, broadcast.PlannerConfig{Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Replans() != 1 {
		t.Fatalf("initial replans = %d", p.Replans())
	}
	if d := p.Drift(); d != 0 {
		t.Fatalf("initial drift = %g", d)
	}
	// Hammer a single key until drift passes the threshold.
	for i := 0; i < 1000; i++ {
		p.RecordAccess(items[3].Key)
	}
	if d := p.Drift(); d <= 0.2 {
		t.Fatalf("drift = %g, want > 0.2", d)
	}
	replanned, err := p.MaybeReplan()
	if err != nil {
		t.Fatal(err)
	}
	if !replanned || p.Replans() != 2 {
		t.Fatalf("replanned=%v replans=%d", replanned, p.Replans())
	}
	if d := p.Drift(); d != 0 {
		t.Fatalf("post-replan drift = %g", d)
	}
	// The hot item should now be early in the broadcast.
	sched := p.Schedule()
	hot := sched.Alloc.Tree().FindLabel("d")
	var maxSlot int
	for _, other := range []string{"a", "b", "c"} {
		id := sched.Alloc.Tree().FindLabel(other)
		if s := sched.Alloc.Slot(id); s > maxSlot {
			maxSlot = s
		}
	}
	if sched.Alloc.Slot(hot) >= maxSlot {
		t.Fatalf("hot item at slot %d, others end at %d", sched.Alloc.Slot(hot), maxSlot)
	}
}

func TestPlannerNoReplanBelowThreshold(t *testing.T) {
	items := catalog(10, 10)
	p, err := broadcast.NewPlanner(items, broadcast.PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.RecordAccess(items[0].Key)
	p.RecordAccess(items[1].Key)
	replanned, err := p.MaybeReplan()
	if err != nil {
		t.Fatal(err)
	}
	if replanned {
		t.Fatal("balanced accesses should not trigger a replan")
	}
	// Unknown keys are ignored gracefully.
	p.RecordAccess(999)
}

func TestPlannerErrors(t *testing.T) {
	if _, err := broadcast.NewPlanner(nil, broadcast.PlannerConfig{}); err == nil {
		t.Fatal("want error for empty catalog")
	}
	dup := catalog(1, 2)
	dup[1].Key = dup[0].Key
	if _, err := broadcast.NewPlanner(dup, broadcast.PlannerConfig{}); err == nil {
		t.Fatal("want error for duplicate keys")
	}
}

// Property: the full pipeline — catalog → tree → optimize → simulate —
// retrieves every item for random catalogs, channel counts and fanouts.
func TestQuickPipeline(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(10)
		items := make([]broadcast.Item, n)
		for i := range items {
			items[i] = broadcast.Item{
				Label:  string(rune('a' + i)),
				Key:    int64(i*3 + 1),
				Weight: float64(1 + rng.Intn(100)),
			}
		}
		fanout := 2 + rng.Intn(3)
		tr, err := broadcast.NewCatalogTree(items, fanout)
		if err != nil {
			return false
		}
		sched, err := broadcast.Optimize(tr, broadcast.Options{
			Channels:      1 + rng.Intn(3),
			ReplicateRoot: rng.Intn(2) == 0,
		})
		if err != nil {
			t.Logf("seed=%d: optimize: %v", seed, err)
			return false
		}
		for _, it := range items {
			if _, found, err := sched.QueryKey(rng.Intn(64), it.Key, pw); err != nil || !found {
				t.Logf("seed=%d key=%d: found=%v err=%v", seed, it.Key, found, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOptimizePipeline(b *testing.B) {
	items := catalog(50, 10, 30, 5, 25, 40, 8, 2)
	tr, err := broadcast.NewCatalogTree(items, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := broadcast.Optimize(tr, broadcast.Options{Channels: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPlannerConcurrentAccess hammers the planner from several goroutines
// while replans happen; run with -race this verifies thread safety.
func TestPlannerConcurrentAccess(t *testing.T) {
	items := catalog(50, 40, 30, 20, 10)
	p, err := broadcast.NewPlanner(items, broadcast.PlannerConfig{Drift: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.RecordAccess(items[(g+i)%len(items)].Key)
				if i%100 == 0 {
					if _, err := p.MaybeReplan(); err != nil {
						t.Error(err)
						return
					}
					_ = p.Schedule().DataWait()
					_ = p.Drift()
				}
			}
		}(g)
	}
	wg.Wait()
	if p.Replans() < 1 {
		t.Fatal("planner lost its schedule")
	}
}

func TestReplayThroughFacade(t *testing.T) {
	items := catalog(40, 30, 20, 10, 5, 5, 5, 5)
	tr, err := broadcast.NewCatalogTree(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := broadcast.Optimize(tr, broadcast.Options{Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sched.Replay(broadcast.ReplayConfig{
		Queries:       2000,
		Seed:          1,
		Power:         pw,
		RangeFraction: 0.25,
		RangeSpan:     20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 2000 || rep.RangeQueries == 0 {
		t.Fatalf("report: %+v", rep)
	}
	avg, err := sched.Measure(pw)
	if err != nil {
		t.Fatal(err)
	}
	// Range scans can only lengthen the mean access over the pure point
	// expectation.
	if rep.Access.Mean < avg.AccessTime-1 {
		t.Fatalf("replay mean %g improbably below expectation %g", rep.Access.Mean, avg.AccessTime)
	}
}

func TestNewCatalogTreeBounded(t *testing.T) {
	items := catalog(8, 7, 6, 5, 4, 3, 2, 1)
	tr, err := broadcast.NewCatalogTreeBounded(items, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range tr.DataIDs() {
		if tr.Level(d)-1 > 3 {
			t.Fatalf("leaf beyond the depth budget: level %d", tr.Level(d))
		}
	}
	// The bounded tree still optimizes and serves lookups.
	sched, err := broadcast.Optimize(tr, broadcast.Options{Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, found, err := sched.QueryKey(0, items[4].Key, pw)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	// Tuning = probes + data bucket <= budget + 1 (+1 sync read off-phase;
	// arrival 0 is the cycle start so no sync read here).
	if m.TuningTime > 4 {
		t.Fatalf("tuning %d exceeds depth budget", m.TuningTime)
	}
	if _, err := broadcast.NewCatalogTreeBounded(items, 2, 2); err == nil {
		t.Fatal("want error: 8 items cannot fit depth 2 at fanout 2")
	}
}

func TestMeasurePerItem(t *testing.T) {
	items := catalog(40, 30, 20, 10)
	tr, err := broadcast.NewCatalogTree(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := broadcast.Optimize(tr, broadcast.Options{Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	per, err := sched.MeasurePerItem(pw)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != len(items) {
		t.Fatalf("items = %d", len(per))
	}
	agg, err := sched.Measure(pw)
	if err != nil {
		t.Fatal(err)
	}
	var wSum, waitSum float64
	for _, im := range per {
		wSum += im.Weight
		waitSum += im.Weight * im.DataWait
	}
	if math.Abs(waitSum/wSum-agg.DataWait) > 1e-9 {
		t.Fatalf("per-item aggregate %g != Measure %g", waitSum/wSum, agg.DataWait)
	}
}

// TestOptimizeFallbackOnLimit: a strangled exact solve degrades to the
// sorting heuristic instead of failing, and the schedule says so.
func TestOptimizeFallbackOnLimit(t *testing.T) {
	items := catalog(50, 10, 30, 5, 25, 40, 8, 2)
	tr, err := broadcast.NewCatalogTree(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := broadcast.Optimize(tr, broadcast.Options{
		Channels: 2, Strategy: broadcast.Exact, MaxExpanded: 1, FallbackOnLimit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Optimal || sched.Used != broadcast.Sorting || sched.LimitErr == nil {
		t.Fatalf("fallback schedule: optimal=%v used=%v limitErr=%v",
			sched.Optimal, sched.Used, sched.LimitErr)
	}
	// The degraded schedule still serves lookups.
	m, found, err := sched.QueryKey(0, items[3].Key, pw)
	if err != nil || !found {
		t.Fatalf("lookup on fallback schedule: found=%v err=%v", found, err)
	}
	if m.AccessTime < 1 {
		t.Fatalf("bogus metrics %+v", m)
	}
	// Without the flag the same options are a hard error.
	if _, err := broadcast.Optimize(tr, broadcast.Options{
		Channels: 2, Strategy: broadcast.Exact, MaxExpanded: 1,
	}); err == nil {
		t.Fatal("want expansion-limit error without FallbackOnLimit")
	}
}

// TestPlannerSurvivesExpansionCap: a live planner with a tiny search
// budget keeps producing schedules (heuristic ones) rather than dying.
func TestPlannerSurvivesExpansionCap(t *testing.T) {
	p, err := broadcast.NewPlanner(catalog(50, 10, 30, 5, 25, 40, 8, 2), broadcast.PlannerConfig{
		Channels: 2, Strategy: broadcast.Exact, MaxExpanded: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := p.Schedule()
	if sched == nil || sched.Optimal || sched.LimitErr == nil {
		t.Fatalf("planner schedule: %+v", sched)
	}
	// Drive drift and replan: still alive.
	for i := 0; i < 200; i++ {
		p.RecordAccess(80)
	}
	replanned, err := p.MaybeReplan()
	if err != nil {
		t.Fatal(err)
	}
	if !replanned {
		t.Fatal("expected a replan after concentrated drift")
	}
	if p.Schedule() == nil || p.Schedule().LimitErr == nil {
		t.Fatal("replanned schedule lost the limit marker")
	}
}
