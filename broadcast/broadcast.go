// Package broadcast is the public API of the library: building broadcast
// index trees from keyed catalogs, computing optimal or heuristic index
// and data allocations over any number of channels (Lo & Chen, ICDE
// 2000), compiling them into runnable broadcast programs, and simulating
// mobile clients against them.
//
// Typical use:
//
//	items := []broadcast.Item{{Label: "AAPL", Key: 1, Weight: 120}, ...}
//	tree, _ := broadcast.NewCatalogTree(items, 2)
//	sched, _ := broadcast.Optimize(tree, broadcast.Options{Channels: 3})
//	fmt.Println(sched.Alloc)                  // the channel/slot grid
//	m, _, _ := sched.QueryKey(0, 1)           // simulate a client lookup
package broadcast

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/alphatree"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/searchstats"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Re-exported building blocks. The aliases keep the public surface in one
// import while the implementations stay internal.
type (
	// Tree is an immutable broadcast index tree.
	Tree = tree.Tree
	// ID identifies a node within a Tree.
	ID = tree.ID
	// Builder assembles custom Trees node by node.
	Builder = tree.Builder
	// Spec is the JSON-serializable tree description.
	Spec = tree.Spec
	// Allocation maps every node to a (channel, slot) position.
	Allocation = alloc.Allocation
	// Item is a keyed, weighted catalog entry.
	Item = alphatree.Item
	// Power is the client energy model.
	Power = sim.Power
	// Metrics is one simulated query's cost.
	Metrics = sim.Metrics
	// Strategy selects the solving method.
	Strategy = core.Strategy
)

// Solver strategies.
const (
	Auto         = core.Auto
	Exact        = core.Exact
	PrunedSearch = core.PrunedSearch
	DataTree     = core.DataTree
	Sorting      = core.Sorting
	Shrinking    = core.Shrinking
	Partitioning = core.Partitioning
)

// NewBuilder starts a custom tree.
func NewBuilder() *Builder { return tree.NewBuilder() }

// ParseTree decodes a tree from its Spec JSON.
func ParseTree(data []byte) (*Tree, error) { return tree.ParseJSON(data) }

// NewCatalogTree builds an alphabetic search tree over the keyed items:
// the optimal Hu–Tucker tree for fanout 2, the optimal DP tree for wider
// fanouts on small catalogs, and the fast weight-balanced construction on
// large ones.
func NewCatalogTree(items []Item, fanout int) (*Tree, error) {
	switch {
	case fanout < 2:
		return nil, fmt.Errorf("broadcast: fanout %d, want >= 2", fanout)
	case fanout == 2:
		return alphatree.HuTucker(items)
	case len(items) <= 128:
		return alphatree.OptimalKAry(items, fanout)
	default:
		return alphatree.KAry(items, fanout)
	}
}

// NewCatalogTreeBounded builds the optimal alphabetic search tree with
// fanout at most fanout whose items sit at most maxDepth index probes
// from the root — a hard cap on worst-case tuning time. It errors when
// the catalog cannot fit the budget.
func NewCatalogTreeBounded(items []Item, fanout, maxDepth int) (*Tree, error) {
	return alphatree.OptimalKAryDepthLimited(items, fanout, maxDepth)
}

// Options configures Optimize.
type Options struct {
	// Channels is the number of broadcast channels; defaults to 1.
	Channels int
	// Strategy picks the solver; Auto (default) is exact on small trees
	// and falls back to Index Tree Sorting on large ones.
	Strategy Strategy
	// MaxExactData overrides Auto's exact-search size limit (default 12).
	MaxExactData int
	// ReplicateRoot fills empty first-channel slots with copies of the
	// index root, cutting the client's initial probe (the paper's
	// replication future-work direction).
	ReplicateRoot bool
	// Polish runs the exchange-based local search over heuristic results.
	Polish bool
	// MaxExpanded caps exact-search expansions (0 = unlimited).
	MaxExpanded int
	// FallbackOnLimit degrades to the sorting heuristic instead of
	// failing when MaxExpanded trips; the limit error is preserved on
	// Schedule.LimitErr and Optimal is reported false.
	FallbackOnLimit bool
	// LiveChannels restricts the plan to the listed physical channels —
	// the survivors of an outage. The solver plans at survivor width and
	// the compiled program is remapped back onto the full Channels-wide
	// tower, dark channels transmitting filler, so the schedule stays
	// hot-swappable against a full-width predecessor. Must be strictly
	// increasing within [1, Channels]; empty means all channels are live.
	LiveChannels []int
}

// Schedule is an optimized, compiled broadcast.
type Schedule struct {
	// Alloc is the channel/slot assignment.
	Alloc *Allocation
	// Optimal reports whether Alloc is provably optimal.
	Optimal bool
	// Used is the strategy that produced Alloc.
	Used Strategy
	// LimitErr records the expansion-limit error an exact solve hit
	// before Options.FallbackOnLimit rescued it with a heuristic; nil on
	// a clean solve.
	LimitErr error
	// Stats holds the per-search performance counters of the solve that
	// produced Alloc (zero when a closed-form or heuristic path ran).
	Stats searchstats.Stats

	program *sim.Program
}

// Optimize computes an allocation for t and compiles it into a runnable
// broadcast program.
func Optimize(t *Tree, opt Options) (*Schedule, error) {
	if opt.Channels == 0 {
		opt.Channels = 1
	}
	sol, err := core.Solve(t, core.Config{
		Channels:        opt.Channels,
		Strategy:        opt.Strategy,
		MaxExactData:    opt.MaxExactData,
		Polish:          opt.Polish,
		MaxExpanded:     opt.MaxExpanded,
		FallbackOnLimit: opt.FallbackOnLimit,
		LiveChannels:    opt.LiveChannels,
	})
	if err != nil {
		return nil, err
	}
	prog, err := sim.Compile(sol.Alloc, sim.Options{FillWithRootCopies: opt.ReplicateRoot})
	if err != nil {
		return nil, err
	}
	if len(sol.Live) > 0 && len(sol.Live) < opt.Channels {
		if prog, err = prog.Remap(sol.Live, opt.Channels); err != nil {
			return nil, err
		}
	}
	return &Schedule{
		Alloc:    sol.Alloc,
		Optimal:  sol.Optimal,
		Used:     sol.Used,
		LimitErr: sol.LimitErr,
		Stats:    sol.Stats,
		program:  prog,
	}, nil
}

// DataWait returns the schedule's average data wait in buckets (the
// paper's Formula 1).
func (s *Schedule) DataWait() float64 { return s.Alloc.DataWait() }

// CycleLen returns the broadcast cycle length in slots.
func (s *Schedule) CycleLen() int { return s.program.CycleLen() }

// Program returns the compiled broadcast program the schedule serves —
// what a tower encodes onto the wire (or stages as the next epoch).
func (s *Schedule) Program() *sim.Program { return s.program }

// Query simulates a client that arrives at the given global slot and
// retrieves the data node target.
func (s *Schedule) Query(arrival int, target ID, pw Power) (Metrics, error) {
	return s.program.Query(arrival, target, pw)
}

// QueryKey simulates a keyed lookup; found is false for absent keys.
func (s *Schedule) QueryKey(arrival int, key int64, pw Power) (Metrics, bool, error) {
	return s.program.QueryKey(arrival, key, pw)
}

// QueryRange simulates a client retrieving every item with a key in
// [lo, hi], following the index with a single receiver (simultaneous
// buckets on other channels are caught on a later cycle). It returns the
// retrieved keys in retrieval order along with the query's cost.
func (s *Schedule) QueryRange(arrival int, lo, hi int64, pw Power) ([]int64, Metrics, error) {
	res, err := s.program.QueryRange(arrival, lo, hi, pw)
	return res.Keys, res.Metrics, err
}

// Measure returns the schedule's exact expected client metrics under the
// given power model (uniform arrival phase, item popularity ∝ weight).
func (s *Schedule) Measure(pw Power) (AverageMetrics, error) {
	sum, err := sim.Evaluate(s.program, pw)
	if err != nil {
		return AverageMetrics{}, err
	}
	return AverageMetrics(sum), nil
}

// AverageMetrics is the expectation of Metrics over arrivals and items.
type AverageMetrics struct {
	ProbeWait, DataWait, AccessTime, TuningTime, Energy float64
	// Retries is the expected number of redundant wake-ups per query;
	// zero unless the schedule is measured under a lossy channel.
	Retries float64
	// Restarts is the expected number of epoch-swap descent restarts per
	// query; zero for a static schedule.
	Restarts float64
	// Failovers is the expected number of dead-air channel failovers per
	// query; zero unless the schedule is measured under channel outages.
	Failovers float64
	// Reconnects is the expected number of station re-dial attempts per
	// query; zero unless the schedule is measured under station downtime.
	Reconnects float64
	// Conflicts is the expected number of batch retrieval conflicts per
	// query — wanted nodes overlapping on the air; zero for single-key
	// workloads.
	Conflicts float64
	// ExtraCycles is the expected number of whole cycles lost to those
	// conflicts per query; zero for single-key workloads.
	ExtraCycles float64
}

// ItemMetrics is one item's exact expected client cost under the
// schedule.
type ItemMetrics = sim.ItemMetrics

// MeasurePerItem returns each data item's exact expected metrics — the
// operator view of which items suffer the worst latency. Items appear in
// catalog order.
func (s *Schedule) MeasurePerItem(pw Power) ([]ItemMetrics, error) {
	return sim.EvaluatePerItem(s.program, pw)
}

// ReplayConfig parameterizes Schedule.Replay.
type ReplayConfig struct {
	// Queries is the number of simulated queries (default 1000).
	Queries int
	// Seed drives arrivals and target selection.
	Seed int64
	// Power is the client energy model.
	Power Power
	// RangeFraction in [0,1] mixes in key-range scans (keyed trees only).
	RangeFraction float64
	// RangeSpan is the key span of each range scan (default 4).
	RangeSpan int64
}

// ReplayReport is the distributional outcome of a replay.
type ReplayReport = driver.Report

// Replay runs a synthetic query workload against the schedule — uniform
// arrival phases, popularity-weighted targets, optionally mixed with
// range scans — and reports percentile metrics that the exact Measure
// expectation cannot provide.
func (s *Schedule) Replay(cfg ReplayConfig) (ReplayReport, error) {
	return driver.Run(s.program, driver.Config{
		Queries:       cfg.Queries,
		Seed:          cfg.Seed,
		Power:         cfg.Power,
		RangeFraction: cfg.RangeFraction,
		RangeSpan:     cfg.RangeSpan,
	})
}
