package broadcast_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/broadcast"
	"repro/internal/epoch"
)

func universe(n int) []broadcast.Item {
	items := make([]broadcast.Item, n)
	for i := range items {
		items[i] = broadcast.Item{
			Label:  fmt.Sprintf("u%02d", i+1),
			Key:    int64(i + 1),
			Weight: float64(n - i), // item 1 hottest initially
		}
	}
	return items
}

func TestStationInitialHotSet(t *testing.T) {
	st, err := broadcast.NewStation(universe(20), broadcast.StationConfig{
		HotSize:  5,
		Channels: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The prior weights make keys 1..5 the initial hot set.
	for key := int64(1); key <= 5; key++ {
		if !st.OnAir(key) {
			t.Errorf("key %d should be on air", key)
		}
	}
	if st.OnAir(20) {
		t.Error("coldest key on air")
	}
	sched := st.Schedule()
	if sched == nil || sched.Alloc.Tree().NumData() != 5 {
		t.Fatal("schedule does not carry the hot set")
	}
	// Every hot key is servable through the broadcast.
	pw := broadcast.Power{Active: 1, Doze: 0.05}
	for key := int64(1); key <= 5; key++ {
		if _, found, err := sched.QueryKey(0, key, pw); err != nil || !found {
			t.Fatalf("key %d: found=%v err=%v", key, found, err)
		}
	}
}

func TestStationAdaptsToShiftedDemand(t *testing.T) {
	st, err := broadcast.NewStation(universe(20), broadcast.StationConfig{
		HotSize: 4,
		Decay:   0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cold keys 16..19 suddenly dominate for several periods.
	for period := 0; period < 6; period++ {
		for key := int64(16); key <= 19; key++ {
			for i := 0; i < 50; i++ {
				st.Record(key)
			}
		}
		if _, _, err := st.EndPeriod(); err != nil {
			t.Fatal(err)
		}
	}
	for key := int64(16); key <= 19; key++ {
		if !st.OnAir(key) {
			t.Errorf("key %d should have been promoted", key)
		}
	}
	if st.OnAir(1) {
		t.Error("stale key 1 still on air")
	}
	_, misses, rebuilds := st.Stats()
	if rebuilds < 1 {
		t.Error("no rebuilds despite full churn")
	}
	if misses == 0 {
		t.Error("the first era-2 accesses must have been misses")
	}
	// The new schedule serves the promoted keys.
	pw := broadcast.Power{Active: 1, Doze: 0.05}
	for key := int64(16); key <= 19; key++ {
		if _, found, err := st.Schedule().QueryKey(0, key, pw); err != nil || !found {
			t.Fatalf("promoted key %d not servable: found=%v err=%v", key, found, err)
		}
	}
}

func TestStationStableDemandNoRebuild(t *testing.T) {
	st, err := broadcast.NewStation(universe(8), broadcast.StationConfig{HotSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, before := st.Stats()
	// Demand matches the prior: nothing should change.
	for period := 0; period < 3; period++ {
		for key := int64(1); key <= 4; key++ {
			st.Record(key)
		}
		rebuilt, coverage, err := st.EndPeriod()
		if err != nil {
			t.Fatal(err)
		}
		if rebuilt {
			t.Fatal("stable demand triggered a rebuild")
		}
		if coverage <= 0 {
			t.Fatalf("coverage = %g", coverage)
		}
	}
	_, _, after := st.Stats()
	if after != before {
		t.Fatalf("rebuilds %d -> %d under stable demand", before, after)
	}
}

// TestStationInstallPlannedSurfacesBuildFailure: handing the install
// path a nil schedule — what an async planner produces when its build
// errored — returns the typed epoch.ErrBuildFailed sentinel and leaves
// the previous schedule on the air.
func TestStationInstallPlannedSurfacesBuildFailure(t *testing.T) {
	st, err := broadcast.NewStation(universe(20), broadcast.StationConfig{
		HotSize:  5,
		Channels: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := st.Schedule()
	err = st.InstallPlanned(nil, nil)
	if !errors.Is(err, epoch.ErrBuildFailed) {
		t.Fatalf("err %v, want epoch.ErrBuildFailed", err)
	}
	if st.Schedule() != before {
		t.Fatal("failed install replaced the on-air schedule")
	}
	_, _, rebuilds := st.Stats()
	if rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1 (failed install must not count)", rebuilds)
	}

	sel, _ := st.ClosePeriod()
	sched, err := st.PlanSelection(sel)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.InstallPlanned(sel, sched); err != nil {
		t.Fatalf("valid install rejected: %v", err)
	}
	if st.Schedule() != sched {
		t.Fatal("valid install did not take the air")
	}
}

func TestStationConfigErrors(t *testing.T) {
	if _, err := broadcast.NewStation(nil, broadcast.StationConfig{HotSize: 1}); err == nil {
		t.Fatal("want error for empty universe")
	}
	if _, err := broadcast.NewStation(universe(3), broadcast.StationConfig{}); err == nil {
		t.Fatal("want error for HotSize 0")
	}
	dup := universe(2)
	dup[1].Key = dup[0].Key
	if _, err := broadcast.NewStation(dup, broadcast.StationConfig{HotSize: 1}); err == nil {
		t.Fatal("want error for duplicate keys")
	}
	if _, err := broadcast.NewStation(universe(3), broadcast.StationConfig{HotSize: 1, Decay: 2}); err == nil {
		t.Fatal("want error for bad decay")
	}
}

func TestStationConcurrent(t *testing.T) {
	st, err := broadcast.NewStation(universe(30), broadcast.StationConfig{HotSize: 6, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				st.Record(int64(1 + (g*7+i)%30))
				if i%97 == 0 {
					if _, _, err := st.EndPeriod(); err != nil {
						t.Error(err)
						return
					}
					_ = st.Schedule().DataWait()
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, _ := st.Stats()
	if hits+misses != 1600 {
		t.Fatalf("hits %d + misses %d != 1600", hits, misses)
	}
}

// TestStationSurvivesExpansionCap: a station whose rebuild search budget
// is strangled stays on the air with a heuristic schedule.
func TestStationSurvivesExpansionCap(t *testing.T) {
	st, err := broadcast.NewStation(universe(12), broadcast.StationConfig{
		HotSize: 6, Channels: 2, MaxExpanded: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := st.Schedule()
	if sched == nil || sched.Optimal || sched.LimitErr == nil {
		t.Fatalf("capped rebuild schedule: %+v", sched)
	}
	if _, found, err := sched.QueryKey(0, 1, pw); err != nil || !found {
		t.Fatalf("hot key lookup on fallback schedule: found=%v err=%v", found, err)
	}
}

// TestStationInstallsChurnCheckedSelection pins the selection
// pass-through: the broadcast that goes on the air is built from exactly
// the selection that passed the churn check, even if demand keeps moving
// between selection and planning (the old code re-selected inside the
// rebuild and could install a diverged hot set).
func TestStationInstallsChurnCheckedSelection(t *testing.T) {
	st, err := broadcast.NewStation(universe(20), broadcast.StationConfig{
		HotSize:  5,
		Channels: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, coverage := st.ClosePeriod()
	if len(sel) != 5 || coverage <= 0 {
		t.Fatalf("selection %v coverage %v", sel, coverage)
	}
	want := map[int64]bool{}
	for _, h := range sel {
		want[h.Key] = true
	}
	// Demand shifts violently after the selection was drawn: a previously
	// cold key becomes the hottest item in the universe.
	for i := 0; i < 10000; i++ {
		st.Record(20)
	}
	sched, err := st.PlanSelection(sel)
	if err != nil {
		t.Fatal(err)
	}
	st.Install(sel, sched)

	for key := int64(1); key <= 20; key++ {
		if st.OnAir(key) != want[key] {
			t.Fatalf("key %d: onAir=%v, selection says %v — installed set diverged",
				key, st.OnAir(key), want[key])
		}
	}
	// The installed schedule's catalog is the selection too.
	tr := st.Schedule().Program().Tree()
	for _, d := range tr.DataIDs() {
		k, _ := tr.Key(d)
		if !want[k] {
			t.Fatalf("schedule carries key %d outside the selection", k)
		}
	}
}

// TestStationRecordUsesKeyIndex: hits/misses agree with OnAir for every
// key (the O(1) key-set index and the hot slice never diverge).
func TestStationRecordHitMissConsistent(t *testing.T) {
	st, err := broadcast.NewStation(universe(12), broadcast.StationConfig{
		HotSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	h0, m0, _ := st.Stats()
	wantHits, wantMisses := h0, m0
	for key := int64(1); key <= 14; key++ {
		onAir := st.OnAir(key)
		if got := st.Record(key); got != onAir {
			t.Fatalf("key %d: Record=%v OnAir=%v", key, got, onAir)
		}
		if onAir {
			wantHits++
		} else {
			wantMisses++
		}
	}
	hits, misses, _ := st.Stats()
	if hits != wantHits || misses != wantMisses {
		t.Fatalf("hits/misses %d/%d, want %d/%d", hits, misses, wantHits, wantMisses)
	}
	if _, _, err := st.EndPeriod(); err != nil {
		t.Fatal(err)
	}
	// The index tracks the install: every hot key still reports a hit.
	for key := int64(1); key <= 12; key++ {
		if st.OnAir(key) != st.Record(key) {
			t.Fatalf("key %d: index diverged after rebuild", key)
		}
	}
}
