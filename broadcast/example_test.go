package broadcast_test

import (
	"fmt"

	"repro/broadcast"
)

// ExampleOptimize builds the paper's Fig. 1(a) example tree and finds the
// optimal two-channel allocation (data wait 264/70 ≈ 3.77 buckets).
func ExampleOptimize() {
	b := broadcast.NewBuilder()
	n1 := b.AddRoot("1")
	n2 := b.AddIndex(n1, "2")
	b.AddData(n2, "A", 20)
	b.AddData(n2, "B", 10)
	n3 := b.AddIndex(n1, "3")
	b.AddData(n3, "E", 18)
	n4 := b.AddIndex(n3, "4")
	b.AddData(n4, "C", 15)
	b.AddData(n4, "D", 7)
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}

	sched, err := broadcast.Optimize(tree, broadcast.Options{Channels: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("data wait: %.4f buckets (optimal: %v)\n", sched.DataWait(), sched.Optimal)
	fmt.Println(sched.Alloc)
	// Output:
	// data wait: 3.7714 buckets (optimal: true)
	// C1: 1 2 A B D
	// C2: - 3 E 4 C
}

// ExampleNewCatalogTree builds a Hu–Tucker search tree over a keyed
// catalog and looks an item up through the simulated broadcast.
func ExampleNewCatalogTree() {
	items := []broadcast.Item{
		{Label: "ants", Key: 1, Weight: 40},
		{Label: "bees", Key: 2, Weight: 10},
		{Label: "cats", Key: 3, Weight: 30},
		{Label: "dogs", Key: 4, Weight: 20},
	}
	tree, err := broadcast.NewCatalogTree(items, 2)
	if err != nil {
		panic(err)
	}
	sched, err := broadcast.Optimize(tree, broadcast.Options{Channels: 1})
	if err != nil {
		panic(err)
	}
	m, found, err := sched.QueryKey(0, 3, broadcast.Power{Active: 1, Doze: 0.05})
	if err != nil {
		panic(err)
	}
	fmt.Printf("found=%v wait=%d slots tuning=%d buckets\n", found, m.DataWait, m.TuningTime)
	// Output:
	// found=true wait=5 slots tuning=3 buckets
}

// ExampleSchedule_QueryRange retrieves all items in a key range.
func ExampleSchedule_QueryRange() {
	items := []broadcast.Item{
		{Label: "a", Key: 10, Weight: 4},
		{Label: "b", Key: 20, Weight: 3},
		{Label: "c", Key: 30, Weight: 2},
		{Label: "d", Key: 40, Weight: 1},
	}
	tree, err := broadcast.NewCatalogTree(items, 2)
	if err != nil {
		panic(err)
	}
	sched, err := broadcast.Optimize(tree, broadcast.Options{Channels: 2})
	if err != nil {
		panic(err)
	}
	keys, _, err := sched.QueryRange(0, 15, 35, broadcast.Power{Active: 1, Doze: 0.05})
	if err != nil {
		panic(err)
	}
	fmt.Println(keys)
	// Output:
	// [20 30]
}

// ExampleStation shows the full server loop: demand shifts, the station
// re-selects what goes on the air and re-optimizes the broadcast.
func ExampleStation() {
	universe := []broadcast.Item{
		{Label: "news", Key: 1, Weight: 30},
		{Label: "sport", Key: 2, Weight: 20},
		{Label: "chess", Key: 3, Weight: 1},
		{Label: "gardening", Key: 4, Weight: 1},
	}
	station, err := broadcast.NewStation(universe, broadcast.StationConfig{
		HotSize: 2,
		Decay:   0.3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("chess on air:", station.OnAir(3))

	// A chess championship breaks out.
	for period := 0; period < 4; period++ {
		for i := 0; i < 100; i++ {
			station.Record(3)
		}
		if _, _, err := station.EndPeriod(); err != nil {
			panic(err)
		}
	}
	fmt.Println("chess on air:", station.OnAir(3))
	// Output:
	// chess on air: false
	// chess on air: true
}
