#!/bin/sh
# check.sh — the tier-1+ gate: everything a change must pass before merge.
#
#   build       go build ./...
#   vet         go vet ./...
#   bcast-vet   go run ./cmd/bcast-vet ./...   (repo-specific invariants;
#               writes bcast-vet.json and enforces a 30s-per-package
#               analyzer time budget)
#   staticcheck staticcheck ./...              (skipped when not installed)
#   govulncheck govulncheck ./...              (skipped when not installed)
#   test        go test ./...                  (tier-1: the full unit/property suite)
#   shuffle     go test -shuffle=on ./...      (no order-dependent tests)
#   race        go test -race ./...            (parallel-harness and pool safety)
#   soak        outage + crash-restart soaks under -race (50 kill/revive
#               cycles each: channel outages, then station SIGKILL/warm
#               restart; leak-free, sim-twin byte-identical)
#   fuzz        scripts/fuzz.sh                (every fuzz target, 5s each)
#   perf        bcast-bench -exp perf          (short run; writes BENCH_pr$PR.json)
#
# staticcheck and govulncheck are pinned in tools/go.mod and installed in
# CI; offline dev boxes without the binaries get a warning, not a failure.
#
# Usage: scripts/check.sh [bench-json-path]
#   PR=5 scripts/check.sh     # writes BENCH_pr5.json
#
# Without an explicit bench-json-path the PR env var is REQUIRED: the
# bench artifact is a per-PR perf snapshot, and a silent default would
# overwrite another PR's baseline.
set -eu

if [ $# -ge 1 ]; then
    out="$1"
elif [ -n "${PR:-}" ]; then
    out="BENCH_pr${PR}.json"
else
    echo "check.sh: set PR (e.g. PR=6 scripts/check.sh) or pass an explicit bench-json path;" >&2
    echo "          refusing to guess which BENCH_pr*.json to overwrite" >&2
    exit 2
fi

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== bcast-vet =="
go run ./cmd/bcast-vet -json bcast-vet.json -timebudget 30s ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "warning: staticcheck not installed; skipping (pinned in tools/go.mod)" >&2
fi

echo "== govulncheck =="
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
else
    echo "warning: govulncheck not installed; skipping (pinned in tools/go.mod)" >&2
fi

echo "== test =="
go test ./...

echo "== shuffle =="
go test -shuffle=on ./...

echo "== race =="
go test -race ./...

echo "== soak =="
go test -race -run 'TestOutageSoak|TestCrashRestartSoak' -count=1 ./internal/netcast

echo "== fuzz =="
sh scripts/fuzz.sh 5s

echo "== perf =="
go run ./cmd/bcast-bench -exp perf -trials 3 -json "$out"

echo "check: all gates passed"
