#!/bin/sh
# check.sh — the tier-1+ gate: everything a change must pass before merge.
#
#   build     go build ./...
#   vet       go vet ./...
#   test      go test ./...          (tier-1: the full unit/property suite)
#   race      go test -race ./...    (parallel-harness and pool safety)
#   fuzz      scripts/fuzz.sh        (every fuzz target, 5s each)
#   perf      bcast-bench -exp perf  (short run; writes BENCH_pr3.json)
#
# Usage: scripts/check.sh [bench-json-path]
set -eu

out="${1:-BENCH_pr3.json}"

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== test =="
go test ./...

echo "== race =="
go test -race ./...

echo "== fuzz =="
sh scripts/fuzz.sh 5s

echo "== perf =="
go run ./cmd/bcast-bench -exp perf -trials 3 -json "$out"

echo "check: all gates passed"
