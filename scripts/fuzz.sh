#!/bin/sh
# fuzz.sh — run every Go fuzz target in the module for a short burst.
#
# Discovers Fuzz* functions package by package and runs each under
# `go test -fuzz` for FUZZTIME (default 5s). Any crasher fails the script
# (and leaves its input under the package's testdata/fuzz corpus).
#
# Usage: scripts/fuzz.sh [fuzztime]
set -eu

fuzztime="${1:-5s}"

found=0
for pkg in $(go list ./...); do
	targets=$(go test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true)
	[ -z "$targets" ] && continue
	for target in $targets; do
		found=1
		echo "== fuzz $pkg.$target ($fuzztime) =="
		go test -run '^$' -fuzz "^${target}\$" -fuzztime "$fuzztime" "$pkg"
	done
done

if [ "$found" = 0 ]; then
	echo "fuzz: no fuzz targets found" >&2
	exit 1
fi
echo "fuzz: all targets survived $fuzztime"
