# Tier-1+ quality gates. `make check` is what a change must pass before
# merge: build, vet, the full test suite, the race detector, and a short
# perf run that refreshes BENCH_pr1.json.

GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 50x .

check:
	sh scripts/check.sh
