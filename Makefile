# Tier-1+ quality gates. `make check` is what a change must pass before
# merge: build, vet, bcast-vet (the repo's own invariant analyzers),
# staticcheck/govulncheck when installed, the full test suite, the race
# detector, a short burst on every fuzz target, and a short perf run
# that refreshes the benchmark JSON.

GO ?= go
FUZZTIME ?= 5s

.PHONY: build vet bcast-vet test race fuzz bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

bcast-vet:
	$(GO) run ./cmd/bcast-vet -timebudget 30s ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	sh scripts/fuzz.sh $(FUZZTIME)

bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 50x .

check:
	sh scripts/check.sh
