// Package repro reproduces "Optimal Index and Data Allocation in Multiple
// Broadcast Channels" (Shou-Chih Lo and Arbee L.P. Chen, ICDE 2000).
//
// The public API lives in repro/broadcast; the paper's algorithms and
// substrates live under repro/internal (see DESIGN.md for the full system
// inventory). The benchmarks in this directory regenerate every table and
// figure of the paper's evaluation; cmd/bcast-bench prints them as tables.
package repro
