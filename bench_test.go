// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per table/figure (E1–E3) plus one per ablation (A1–A4); the reported
// per-op time is the cost of regenerating the artifact once. The actual
// values the paper reports are produced by cmd/bcast-bench and recorded
// in EXPERIMENTS.md.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/alphatree"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/retrieval"
	"repro/internal/sim"
	"repro/internal/stats"
)

// BenchmarkTable1 regenerates the Table 1 row for each fanout (E1).
// m = 5 and 6 are bounded by the enumeration limit exactly like the
// published table's N/A entries; m = 6's surviving-path enumeration is
// the expensive part (about 10s), so it gets a reduced default.
func BenchmarkTable1(b *testing.B) {
	for _, m := range []int{2, 3, 4} {
		b.Run(benchName("m", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiment.Table1(experiment.Table1Config{
					Ms: []int{m}, Trials: 1, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 1 {
					b.Fatal("missing row")
				}
			}
		})
	}
}

// BenchmarkFig14 regenerates one Fig. 14 point per sigma (E2): an optimal
// data-tree search plus the sorting heuristic on a 21-node tree.
func BenchmarkFig14(b *testing.B) {
	for _, sigma := range []float64{10, 20, 30, 40} {
		b.Run(benchName("sigma", int(sigma)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := experiment.Fig14(experiment.Fig14Config{
					Sigmas: []float64{sigma}, Trials: 1, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if points[0].Optimal > points[0].Sorting+1e-9 {
					b.Fatal("optimal above sorting")
				}
			}
		})
	}
}

// BenchmarkFig2 regenerates the worked example (E3): both paper
// allocations plus the exact 1- and 2-channel optima.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChannelSweep regenerates the A1 ablation.
func BenchmarkChannelSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ChannelSweep(experiment.ChannelSweepConfig{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPruningAblation regenerates the A2 ablation.
func BenchmarkPruningAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.PruningAblation(experiment.PruningAblationConfig{
			Trials: 3, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeuristicQuality regenerates the A3 ablation.
func BenchmarkHeuristicQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.HeuristicQuality(experiment.HeuristicQualityConfig{
			Trials: 5, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimComparison regenerates the A4 ablation: four schemes driven
// through the full bucket-level simulator.
func BenchmarkSimComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.SimComparison(experiment.SimComparisonConfig{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	return fmt.Sprintf("%s=%d", prefix, v)
}

// BenchmarkTreeShape regenerates the A5 ablation: five index-tree
// constructions built, allocated and measured in the simulator.
func BenchmarkTreeShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.TreeShape(experiment.TreeShapeConfig{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicationSweep regenerates the A6 ablation.
func BenchmarkReplicationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ReplicationSweep(experiment.ReplicationConfig{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeScale regenerates the A7 study at its smallest size.
func BenchmarkLargeScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.LargeScale(experiment.LargeScaleConfig{
			Sizes: []int{100}, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanBatch measures the A11 batch planners alone on a fixed
// compiled two-channel program: the exact DP at its default K ceiling
// and the greedy fallback over the full catalog. The catalog is solved
// once outside the timer so only planning is measured.
func BenchmarkPlanBatch(b *testing.B) {
	rng := stats.NewRNG(1)
	items := make([]alphatree.Item, 24)
	for i := range items {
		items[i] = alphatree.Item{
			Label:  fmt.Sprintf("i%02d", i),
			Key:    int64(i + 1),
			Weight: float64(1 + rng.Intn(100)),
		}
	}
	tr, err := alphatree.HuTucker(items)
	if err != nil {
		b.Fatal(err)
	}
	sol, err := core.Solve(tr, core.Config{Channels: 2})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := sim.Compile(sol.Alloc, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	planner := retrieval.New(retrieval.Config{})
	data := prog.Tree().DataIDs()
	b.Run(benchName("exact/K", 8), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := planner.PlanExact(prog, i%prog.CycleLen(), data[:8]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(benchName("greedy/K", len(data)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := planner.PlanGreedy(prog, i%prog.CycleLen(), data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig14Multi regenerates one cell of the multichannel Fig. 14
// extension (E2b).
func BenchmarkFig14Multi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig14Multi(experiment.Fig14MultiConfig{
			Sigmas: []float64{20}, Ks: []int{2}, Trials: 1, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
