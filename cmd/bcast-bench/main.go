// Command bcast-bench regenerates the paper's evaluation — Table 1,
// Fig. 14, the Fig. 2 worked example — and the ablation experiments
// catalogued in DESIGN.md (channel sweep, pruning effort, heuristic
// quality, simulator comparison).
//
// Examples:
//
//	bcast-bench -exp table1
//	bcast-bench -exp fig14 -trials 50 -csv
//	bcast-bench -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiment"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table1 | fig14 | fig14multi | fig2 | channels | pruning | heuristics | sim | treeshape | replication | largescale | all")
		trials = flag.Int("trials", 0, "trial count override (0 = experiment default)")
		seed   = flag.Int64("seed", 1, "random seed")
		maxM   = flag.Int("max-m", 5, "largest fanout for table1 (6 takes minutes)")
		csv    = flag.Bool("csv", false, "emit fig14 as CSV instead of a table")
	)
	flag.Parse()
	if err := run(*exp, *trials, *seed, *maxM, *csv, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, trials int, seed int64, maxM int, csv bool, w io.Writer) error {
	runners := map[string]func() error{
		"table1": func() error {
			ms := []int{}
			for m := 2; m <= maxM; m++ {
				ms = append(ms, m)
			}
			fmt.Fprintln(w, "== Table 1: pruning effects (full m-ary tree, depth 3) ==")
			rows, err := experiment.Table1(experiment.Table1Config{Ms: ms, Trials: trials, Seed: seed})
			if err != nil {
				return err
			}
			return experiment.RenderTable1(w, rows)
		},
		"fig14": func() error {
			fmt.Fprintln(w, "== Fig. 14: Index Tree Sorting vs Optimal (m=4, µ=100) ==")
			points, err := experiment.Fig14(experiment.Fig14Config{Trials: trials, Seed: seed})
			if err != nil {
				return err
			}
			if csv {
				return experiment.WriteCSVFig14(w, points)
			}
			return experiment.RenderFig14(w, points)
		},
		"fig14multi": func() error {
			fmt.Fprintln(w, "== E2b: Fig. 14 extended to multiple channels (m=3) ==")
			points, err := experiment.Fig14Multi(experiment.Fig14MultiConfig{Trials: trials, Seed: seed})
			if err != nil {
				return err
			}
			return experiment.RenderFig14Multi(w, points)
		},
		"fig2": func() error {
			fmt.Fprintln(w, "== Fig. 2: the worked example ==")
			r, err := experiment.Fig2()
			if err != nil {
				return err
			}
			return experiment.RenderFig2(w, r)
		},
		"channels": func() error {
			fmt.Fprintln(w, "== A1: optimal data wait vs channel count ==")
			points, err := experiment.ChannelSweep(experiment.ChannelSweepConfig{Seed: seed})
			if err != nil {
				return err
			}
			return experiment.RenderChannelSweep(w, points)
		},
		"pruning": func() error {
			fmt.Fprintln(w, "== A2: search effort with pruning on/off ==")
			points, err := experiment.PruningAblation(experiment.PruningAblationConfig{Trials: trials, Seed: seed})
			if err != nil {
				return err
			}
			return experiment.RenderPruning(w, points)
		},
		"heuristics": func() error {
			fmt.Fprintln(w, "== A3: heuristic cost / optimal cost ==")
			points, err := experiment.HeuristicQuality(experiment.HeuristicQualityConfig{Trials: trials, Seed: seed})
			if err != nil {
				return err
			}
			return experiment.RenderQuality(w, points)
		},
		"sim": func() error {
			fmt.Fprintln(w, "== A4: client metrics vs SV96 and flat broadcast ==")
			rows, err := experiment.SimComparison(experiment.SimComparisonConfig{Seed: seed})
			if err != nil {
				return err
			}
			return experiment.RenderSim(w, rows)
		},
		"replication": func() error {
			fmt.Fprintln(w, "== A6: root replication sweep ==")
			rows, err := experiment.ReplicationSweep(experiment.ReplicationConfig{Seed: seed})
			if err != nil {
				return err
			}
			return experiment.RenderReplication(w, rows)
		},
		"largescale": func() error {
			fmt.Fprintln(w, "== A7: heuristics vs lower bound at scale ==")
			rows, err := experiment.LargeScale(experiment.LargeScaleConfig{Seed: seed})
			if err != nil {
				return err
			}
			return experiment.RenderLargeScale(w, rows)
		},
		"treeshape": func() error {
			fmt.Fprintln(w, "== A5: index-tree construction comparison ==")
			rows, err := experiment.TreeShape(experiment.TreeShapeConfig{Seed: seed})
			if err != nil {
				return err
			}
			return experiment.RenderTreeShape(w, rows)
		},
	}
	if exp == "all" {
		for _, name := range []string{"fig2", "table1", "fig14", "fig14multi", "channels", "pruning", "heuristics", "sim", "treeshape", "replication", "largescale"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	runner, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return runner()
}
