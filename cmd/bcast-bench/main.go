// Command bcast-bench regenerates the paper's evaluation — Table 1,
// Fig. 14, the Fig. 2 worked example — and the ablation experiments
// catalogued in DESIGN.md (channel sweep, pruning effort, heuristic
// quality, simulator comparison), plus a perf suite over the search
// engines and the experiment harness.
//
// Examples:
//
//	bcast-bench -exp table1
//	bcast-bench -exp fig14 -trials 50 -csv
//	bcast-bench -exp all -workers 4
//	bcast-bench -exp perf -json BENCH_pr1.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/experiment"
)

// options carries the command-line configuration into run.
type options struct {
	exp    string
	trials int
	seed   int64
	maxM   int
	csv    bool
	// workers fans trial loops across goroutines (0 = GOMAXPROCS); output
	// is identical for every value.
	workers int
	// jsonPath, when non-empty, additionally writes the perf report as
	// machine-readable JSON to this file.
	jsonPath string
}

func main() {
	var opt options
	flag.StringVar(&opt.exp, "exp", "all", "experiment: table1 | fig14 | fig14multi | fig2 | channels | pruning | heuristics | sim | treeshape | replication | largescale | loss | adapt | outage | batch | restart | perf | all")
	flag.IntVar(&opt.trials, "trials", 0, "trial count override (0 = experiment default)")
	flag.Int64Var(&opt.seed, "seed", 1, "random seed")
	flag.IntVar(&opt.maxM, "max-m", 5, "largest fanout for table1 (6 takes minutes)")
	flag.BoolVar(&opt.csv, "csv", false, "emit fig14 as CSV instead of a table")
	flag.IntVar(&opt.workers, "workers", 0, "worker goroutines for trial loops (0 = GOMAXPROCS)")
	flag.StringVar(&opt.jsonPath, "json", "", "write the perf report as JSON to this file (perf experiment)")
	flag.Parse()
	if err := run(opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-bench:", err)
		os.Exit(1)
	}
}

func run(opt options, w io.Writer) error {
	runners := map[string]func() error{
		"table1": func() error {
			ms := []int{}
			for m := 2; m <= opt.maxM; m++ {
				ms = append(ms, m)
			}
			fmt.Fprintln(w, "== Table 1: pruning effects (full m-ary tree, depth 3) ==")
			rows, err := experiment.Table1(experiment.Table1Config{
				Ms: ms, Trials: opt.trials, Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			return experiment.RenderTable1(w, rows)
		},
		"fig14": func() error {
			fmt.Fprintln(w, "== Fig. 14: Index Tree Sorting vs Optimal (m=4, µ=100) ==")
			points, err := experiment.Fig14(experiment.Fig14Config{
				Trials: opt.trials, Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			if opt.csv {
				return experiment.WriteCSVFig14(w, points)
			}
			return experiment.RenderFig14(w, points)
		},
		"fig14multi": func() error {
			fmt.Fprintln(w, "== E2b: Fig. 14 extended to multiple channels (m=3) ==")
			points, err := experiment.Fig14Multi(experiment.Fig14MultiConfig{
				Trials: opt.trials, Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			return experiment.RenderFig14Multi(w, points)
		},
		"fig2": func() error {
			fmt.Fprintln(w, "== Fig. 2: the worked example ==")
			r, err := experiment.Fig2()
			if err != nil {
				return err
			}
			return experiment.RenderFig2(w, r)
		},
		"channels": func() error {
			fmt.Fprintln(w, "== A1: optimal data wait vs channel count ==")
			points, err := experiment.ChannelSweep(experiment.ChannelSweepConfig{Seed: opt.seed})
			if err != nil {
				return err
			}
			return experiment.RenderChannelSweep(w, points)
		},
		"pruning": func() error {
			fmt.Fprintln(w, "== A2: search effort with pruning on/off ==")
			points, err := experiment.PruningAblation(experiment.PruningAblationConfig{
				Trials: opt.trials, Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			return experiment.RenderPruning(w, points)
		},
		"heuristics": func() error {
			fmt.Fprintln(w, "== A3: heuristic cost / optimal cost ==")
			points, err := experiment.HeuristicQuality(experiment.HeuristicQualityConfig{
				Trials: opt.trials, Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			return experiment.RenderQuality(w, points)
		},
		"sim": func() error {
			fmt.Fprintln(w, "== A4: client metrics vs SV96 and flat broadcast ==")
			rows, err := experiment.SimComparison(experiment.SimComparisonConfig{Seed: opt.seed})
			if err != nil {
				return err
			}
			return experiment.RenderSim(w, rows)
		},
		"replication": func() error {
			fmt.Fprintln(w, "== A6: root replication sweep ==")
			rows, err := experiment.ReplicationSweep(experiment.ReplicationConfig{Seed: opt.seed})
			if err != nil {
				return err
			}
			return experiment.RenderReplication(w, rows)
		},
		"largescale": func() error {
			fmt.Fprintln(w, "== A7: heuristics vs lower bound at scale ==")
			rows, err := experiment.LargeScale(experiment.LargeScaleConfig{
				Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			return experiment.RenderLargeScale(w, rows)
		},
		"treeshape": func() error {
			fmt.Fprintln(w, "== A5: index-tree construction comparison ==")
			rows, err := experiment.TreeShape(experiment.TreeShapeConfig{Seed: opt.seed})
			if err != nil {
				return err
			}
			return experiment.RenderTreeShape(w, rows)
		},
		"loss": func() error {
			fmt.Fprintln(w, "== A8: client cost under a lossy channel ==")
			rows, err := experiment.LossSweep(experiment.LossConfig{
				Trials: opt.trials, Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			return experiment.RenderLoss(w, rows)
		},
		"adapt": func() error {
			fmt.Fprintln(w, "== A9: demand drift vs rebuild cadence (epoch hot swap) ==")
			rows, err := experiment.AdaptSweep(experiment.AdaptConfig{
				Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			return experiment.RenderAdapt(w, rows)
		},
		"batch": func() error {
			fmt.Fprintln(w, "== A11: batch retrieval planning vs sequential lookups ==")
			points, err := experiment.BatchSweep(experiment.BatchConfig{
				Trials: opt.trials, Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			return experiment.RenderBatch(w, points)
		},
		"outage": func() error {
			fmt.Fprintln(w, "== A10: channel outages vs watchdog replanning ==")
			rows, err := experiment.OutageSweep(experiment.OutageSweepConfig{
				Trials: opt.trials, Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			return experiment.RenderOutage(w, rows)
		},
		"restart": func() error {
			fmt.Fprintln(w, "== A12: station crashes vs reconnect backoff and checkpoint cadence ==")
			rows, replay, err := experiment.RestartSweep(experiment.RestartSweepConfig{
				Trials: opt.trials, Seed: opt.seed, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			return experiment.RenderRestart(w, rows, replay)
		},
		"perf": func() error {
			fmt.Fprintln(w, "== Perf: search engines and experiment harness ==")
			report, err := experiment.Perf(experiment.PerfConfig{
				Seed: opt.seed, Runs: opt.trials, Workers: opt.workers,
			})
			if err != nil {
				return err
			}
			if err := experiment.RenderPerf(w, report); err != nil {
				return err
			}
			if opt.jsonPath != "" {
				f, err := os.Create(opt.jsonPath)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiment.WritePerfJSON(f, report); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n", opt.jsonPath)
			}
			return nil
		},
	}
	if opt.exp == "all" {
		for _, name := range []string{"fig2", "table1", "fig14", "fig14multi", "channels", "pruning", "heuristics", "sim", "treeshape", "replication", "largescale", "loss", "adapt", "outage", "batch", "restart"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	runner, ok := runners[opt.exp]
	if !ok {
		names := make([]string, 0, len(runners)+1)
		for name := range runners {
			names = append(names, name)
		}
		names = append(names, "all")
		sort.Strings(names)
		return fmt.Errorf("unknown experiment %q; registered experiments: %s",
			opt.exp, strings.Join(names, ", "))
	}
	return runner()
}
