package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
)

func TestRunEachExperiment(t *testing.T) {
	cases := []struct {
		exp  string
		want string
	}{
		{"fig2", "Optimal two channels"},
		{"table1", "63063000"},
		{"fig14", "sigma"},
		{"fig14multi", "sorting"},
		{"channels", "corollary1"},
		{"pruning", "saved"},
		{"heuristics", "partitioning"},
		{"sim", "SV96"},
		{"treeshape", "hu-tucker"},
		{"outage", "watchdog"},
		{"batch", "speedup"},
	}
	for _, c := range cases {
		t.Run(c.exp, func(t *testing.T) {
			var sb strings.Builder
			// Small trials and max-m keep the full matrix under a second
			// per experiment.
			if err := run(options{exp: c.exp, trials: 2, seed: 1, maxM: 4}, &sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), c.want) {
				t.Errorf("output missing %q:\n%s", c.want, sb.String())
			}
		})
	}
}

func TestRunFig14CSV(t *testing.T) {
	var sb strings.Builder
	if err := run(options{exp: "fig14", trials: 1, seed: 1, maxM: 3, csv: true}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sigma,optimal,sorting") {
		t.Errorf("CSV header missing:\n%s", sb.String())
	}
}

func TestRunPerfWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	var sb strings.Builder
	if err := run(options{exp: "perf", trials: 1, seed: 1, maxM: 3, jsonPath: path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"topo/pruned/k=2", "datatree/full", "harness/fig14/parallel", "dom-pruned"} {
		if !strings.Contains(out, want) {
			t.Errorf("perf table missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report experiment.PerfReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("perf JSON does not parse: %v", err)
	}
	if len(report.Cases) < 6 {
		t.Fatalf("perf JSON has %d cases, want >= 6", len(report.Cases))
	}
	for _, c := range report.Cases {
		if strings.HasPrefix(c.Name, "topo/") || strings.HasPrefix(c.Name, "datatree/") {
			if c.Stats.Generated == 0 || c.Stats.Expanded == 0 {
				t.Errorf("case %s reports zero search counters: %+v", c.Name, c.Stats)
			}
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run(options{exp: "warp", trials: 1, seed: 1, maxM: 3}, &strings.Builder{})
	if err == nil {
		t.Fatal("want error for unknown experiment")
	}
	// The error lists every registered experiment so a typo is
	// self-correcting at the terminal.
	for _, name := range []string{"table1", "fig14", "batch", "perf", "all"} {
		if !strings.Contains(err.Error(), name) { //nolint:bcast-errsentinel // the listing text itself is the contract under test, not a sentinel
			t.Errorf("unknown-experiment error does not list %q: %v", name, err)
		}
	}
}
