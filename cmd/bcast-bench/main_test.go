package main

import (
	"strings"
	"testing"
)

func TestRunEachExperiment(t *testing.T) {
	cases := []struct {
		exp  string
		want string
	}{
		{"fig2", "Optimal two channels"},
		{"table1", "63063000"},
		{"fig14", "sigma"},
		{"fig14multi", "sorting"},
		{"channels", "corollary1"},
		{"pruning", "saved"},
		{"heuristics", "partitioning"},
		{"sim", "SV96"},
		{"treeshape", "hu-tucker"},
	}
	for _, c := range cases {
		t.Run(c.exp, func(t *testing.T) {
			var sb strings.Builder
			// Small trials and max-m keep the full matrix under a second
			// per experiment.
			if err := run(c.exp, 2, 1, 4, false, &sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), c.want) {
				t.Errorf("output missing %q:\n%s", c.want, sb.String())
			}
		})
	}
}

func TestRunFig14CSV(t *testing.T) {
	var sb strings.Builder
	if err := run("fig14", 1, 1, 3, true, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sigma,optimal,sorting") {
		t.Errorf("CSV header missing:\n%s", sb.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("warp", 1, 1, 3, false, &strings.Builder{}); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}
