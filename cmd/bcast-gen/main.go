// Command bcast-gen generates broadcast index trees as Spec JSON for the
// other tools: full balanced m-ary trees (the paper's experimental
// workload), random-shape trees, index chains, and keyed catalogs built
// into Hu–Tucker / k-ary search trees.
//
// Examples:
//
//	bcast-gen -type mary -m 4 -depth 3 -dist normal -mu 100 -sigma 20
//	bcast-gen -type random -n 30 -dist zipf -theta 0.9
//	bcast-gen -type catalog -n 50 -fanout 3 > tree.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/alphatree"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/workload"
)

func main() {
	var (
		typ    = flag.String("type", "mary", "tree type: mary | random | chain | catalog")
		m      = flag.Int("m", 3, "fanout for -type mary")
		depth  = flag.Int("depth", 3, "depth (levels) for -type mary")
		n      = flag.Int("n", 10, "data-node count for -type random/chain/catalog")
		fanout = flag.Int("fanout", 2, "search-tree fanout for -type catalog")
		dist   = flag.String("dist", "uniform", "weight distribution: uniform | normal | zipf | const")
		mu     = flag.Float64("mu", 100, "normal mean / const value")
		sigma  = flag.Float64("sigma", 20, "normal standard deviation")
		theta  = flag.Float64("theta", 0.9, "zipf skew")
		lo     = flag.Float64("lo", 1, "uniform lower bound")
		hi     = flag.Float64("hi", 100, "uniform upper bound")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*typ, *m, *depth, *n, *fanout, *dist, *mu, *sigma, *theta, *lo, *hi, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-gen:", err)
		os.Exit(1)
	}
}

func run(typ string, m, depth, n, fanout int, dist string, mu, sigma, theta, lo, hi float64, seed int64, out string) error {
	rng := stats.NewRNG(seed)
	var d stats.Dist
	switch dist {
	case "uniform":
		d = stats.Uniform{Lo: lo, Hi: hi}
	case "normal":
		d = stats.Normal{Mu: mu, Sigma: sigma}
	case "zipf":
		d = &stats.Zipf{Theta: theta}
	case "const":
		d = stats.Constant{V: mu}
	default:
		return fmt.Errorf("unknown distribution %q", dist)
	}

	var (
		t   *tree.Tree
		err error
	)
	switch typ {
	case "mary":
		t, err = workload.FullMAry(m, depth, d, rng)
	case "random":
		t, err = workload.Random(workload.RandomConfig{NumData: n, MaxFanout: m, Dist: d}, rng)
	case "chain":
		t, err = workload.Chain(n, d.Sample(rng))
	case "catalog":
		items := workload.Catalog(n, d, rng)
		aItems := make([]alphatree.Item, len(items))
		for i, it := range items {
			aItems[i] = alphatree.Item{Label: it.Label, Key: it.Key, Weight: it.Weight}
		}
		if fanout == 2 {
			t, err = alphatree.HuTucker(aItems)
		} else {
			t, err = alphatree.KAry(aItems, fanout)
		}
	default:
		return fmt.Errorf("unknown tree type %q", typ)
	}
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(t.ToSpec(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}
