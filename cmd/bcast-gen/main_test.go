package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tree"
)

func genToFile(t *testing.T, typ, dist string, m, depth, n, fanout int) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "tree.json")
	err := run(typ, m, depth, n, fanout, dist, 100, 20, 0.9, 1, 100, 1, out)
	if err != nil {
		t.Fatalf("run(%s,%s): %v", typ, dist, err)
	}
	return out
}

func parse(t *testing.T, path string) *tree.Tree {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tree.ParseJSON(data)
	if err != nil {
		t.Fatalf("generated tree does not parse: %v", err)
	}
	return tr
}

func TestGenerateMAry(t *testing.T) {
	tr := parse(t, genToFile(t, "mary", "normal", 3, 3, 0, 0))
	if tr.NumData() != 9 || tr.Depth() != 3 {
		t.Fatalf("mary tree: data=%d depth=%d", tr.NumData(), tr.Depth())
	}
}

func TestGenerateRandom(t *testing.T) {
	tr := parse(t, genToFile(t, "random", "zipf", 3, 0, 12, 0))
	if tr.NumData() != 12 {
		t.Fatalf("random tree: data=%d", tr.NumData())
	}
}

func TestGenerateChain(t *testing.T) {
	tr := parse(t, genToFile(t, "chain", "const", 0, 0, 5, 0))
	if tr.NumIndex() != 5 || tr.NumData() != 1 {
		t.Fatalf("chain: index=%d data=%d", tr.NumIndex(), tr.NumData())
	}
}

func TestGenerateCatalog(t *testing.T) {
	for _, fanout := range []int{2, 3} {
		tr := parse(t, genToFile(t, "catalog", "uniform", 0, 0, 10, fanout))
		if tr.NumData() != 10 || !tr.Keyed() {
			t.Fatalf("catalog fanout %d: data=%d keyed=%v", fanout, tr.NumData(), tr.Keyed())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genToFile(t, "mary", "normal", 2, 3, 0, 0)
	b := genToFile(t, "mary", "normal", 2, 3, 0, 0)
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same seed produced different trees")
	}
}

func TestGenerateErrors(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "x.json")
	if err := run("nope", 2, 3, 5, 2, "uniform", 0, 0, 0, 1, 2, 1, tmp); err == nil {
		t.Fatal("want error for unknown type")
	}
	if err := run("mary", 2, 3, 5, 2, "nope", 0, 0, 0, 1, 2, 1, tmp); err == nil {
		t.Fatal("want error for unknown distribution")
	}
	if err := run("mary", 0, 3, 5, 2, "uniform", 0, 0, 0, 1, 2, 1, tmp); err == nil {
		t.Fatal("want error for m=0")
	}
}
