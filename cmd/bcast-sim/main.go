// Command bcast-sim optimizes a tree, compiles the broadcast program, and
// simulates mobile clients against it, reporting exact expected metrics
// (probe/data/access wait, tuning time, energy) plus a sample of
// individual queries.
//
// Example:
//
//	bcast-gen -type mary -m 3 -depth 3 | bcast-sim -k 2 -replicate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

func main() {
	var (
		in        = flag.String("tree", "", "tree JSON file (default stdin)")
		k         = flag.Int("k", 1, "number of broadcast channels")
		strategy  = flag.String("strategy", "auto", "solver strategy (see bcast-opt)")
		replicate = flag.Bool("replicate", false, "fill empty channel-1 slots with root copies")
		queries   = flag.Int("queries", 10, "sample queries to print")
		seed      = flag.Int64("seed", 1, "seed for sample queries")
		active    = flag.Float64("active", 1, "active power per slot")
		doze      = flag.Float64("doze", 0.05, "doze power per slot")
		replay    = flag.Int("replay", 0, "replay this many workload queries and print percentiles")
		rangeFrac = flag.Float64("range-frac", 0, "fraction of replayed queries that are range scans (keyed trees)")
	)
	flag.Parse()
	if err := run(*in, *k, *strategy, *replicate, *queries, *seed, *active, *doze, *replay, *rangeFrac, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-sim:", err)
		os.Exit(1)
	}
}

func run(in string, k int, strategy string, replicate bool, queries int, seed int64, active, doze float64, replay int, rangeFrac float64, w io.Writer) error {
	var data []byte
	var err error
	if in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}
	t, err := tree.ParseJSON(data)
	if err != nil {
		return err
	}
	strat, err := core.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	sol, err := core.Solve(t, core.Config{Channels: k, Strategy: strat})
	if err != nil {
		return err
	}
	prog, err := sim.Compile(sol.Alloc, sim.Options{FillWithRootCopies: replicate})
	if err != nil {
		return err
	}
	power := sim.Power{Active: active, Doze: doze}
	summary, err := sim.Evaluate(prog, power)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "allocation (%s, data wait %.4f buckets):\n%s\n\n", sol.Used, sol.Cost, sol.Alloc)
	fmt.Fprintf(w, "expected metrics (uniform arrival, popularity-weighted targets):\n")
	fmt.Fprintf(w, "  probe wait  %8.4f slots\n", summary.ProbeWait)
	fmt.Fprintf(w, "  data wait   %8.4f slots\n", summary.DataWait)
	fmt.Fprintf(w, "  access time %8.4f slots\n", summary.AccessTime)
	fmt.Fprintf(w, "  tuning time %8.4f buckets\n", summary.TuningTime)
	fmt.Fprintf(w, "  energy      %8.4f units\n\n", summary.Energy)

	if queries > 0 {
		rng := stats.NewRNG(seed)
		dataIDs := t.DataIDs()
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "arrival\ttarget\tprobe\tdata\taccess\ttuning\tenergy")
		for i := 0; i < queries; i++ {
			target := dataIDs[rng.Intn(len(dataIDs))]
			arrival := rng.Intn(prog.CycleLen() * 2)
			m, err := prog.Query(arrival, target, power)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%.3f\n",
				arrival, t.Label(target), m.ProbeWait, m.DataWait, m.AccessTime, m.TuningTime, m.Energy)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if replay > 0 {
		rep, err := driver.Run(prog, driver.Config{
			Queries:       replay,
			Seed:          seed,
			Power:         power,
			RangeFraction: rangeFrac,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nreplay of %d queries (%d point, %d range):\n",
			rep.Queries, rep.PointQueries, rep.RangeQueries)
		fmt.Fprintf(w, "  access: %s\n", rep.Access)
		fmt.Fprintf(w, "  tuning: %s\n", rep.Tuning)
		fmt.Fprintf(w, "  energy: %s\n", rep.Energy)
	}
	return nil
}
