package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tree"
)

func fig1File(t *testing.T) string {
	t.Helper()
	data, err := tree.Fig1().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig1.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimulateFig1(t *testing.T) {
	var sb strings.Builder
	if err := run(fig1File(t), 2, "auto", false, 5, 1, 1, 0.05, 0, 0, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"data wait 3.7714",
		"probe wait",
		"tuning time",
		"energy",
		"arrival  target", // the sample-query table header
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	// 5 sample queries plus the header.
	if lines := strings.Count(out, "\n"); lines < 15 {
		t.Errorf("output too short (%d lines):\n%s", lines, out)
	}
}

func TestSimulateReplicated(t *testing.T) {
	var sb strings.Builder
	if err := run(fig1File(t), 2, "sorting", true, 0, 1, 1, 0.05, 200, 0, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "arrival  target") {
		t.Error("queries=0 should suppress the sample table")
	}
	if !strings.Contains(sb.String(), "replay of 200 queries") {
		t.Errorf("missing replay section:\n%s", sb.String())
	}
}

func TestSimulateErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.json"), 1, "auto", false, 0, 1, 1, 0.05, 0, 0, &strings.Builder{}); err == nil {
		t.Fatal("want error for missing file")
	}
	if err := run(fig1File(t), 1, "bogus", false, 0, 1, 1, 0.05, 0, 0, &strings.Builder{}); err == nil {
		t.Fatal("want error for bad strategy")
	}
}
