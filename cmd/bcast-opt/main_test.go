package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tree"
)

func fig1File(t *testing.T) string {
	t.Helper()
	data, err := tree.Fig1().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig1.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOptimizeFig1TwoChannels(t *testing.T) {
	var sb strings.Builder
	if err := run(fig1File(t), 2, "auto", 12, false, false, false, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"9 nodes (5 data)",
		"optimal: true",
		"average data wait: 3.7714", // 264/70
		"C1:",
		"C2:",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestOptimizeStrategies(t *testing.T) {
	path := fig1File(t)
	for _, s := range []string{"exact", "sorting", "data-tree", "shrinking", "partitioning"} {
		var sb strings.Builder
		if err := run(path, 1, s, 12, false, false, false, &sb); err != nil {
			t.Fatalf("strategy %s: %v", s, err)
		}
		if !strings.Contains(sb.String(), "average data wait") {
			t.Errorf("strategy %s produced no wait line", s)
		}
	}
}

func TestOptimizeShowTree(t *testing.T) {
	var sb strings.Builder
	if err := run(fig1File(t), 2, "auto", 12, false, true, false, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"2 paths", "{2,3}", "cost 264"} {
		if !strings.Contains(out, frag) {
			t.Errorf("show-tree output missing %q:\n%s", frag, out)
		}
	}
}

func TestOptimizeShowDataTree(t *testing.T) {
	var sb strings.Builder
	if err := run(fig1File(t), 1, "auto", 12, false, false, true, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"pruned data tree", "{1,2},{1,2} A", "cost 391"} {
		if !strings.Contains(out, frag) {
			t.Errorf("show-datatree output missing %q:\n%s", frag, out)
		}
	}
	if err := run(fig1File(t), 2, "auto", 12, false, false, true, &strings.Builder{}); err == nil {
		t.Fatal("want error for -show-datatree with k=2")
	}
}

func TestOptimizeDOT(t *testing.T) {
	var sb strings.Builder
	if err := run(fig1File(t), 1, "auto", 12, true, false, false, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Error("missing DOT output")
	}
}

func TestOptimizeErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.json"), 1, "auto", 12, false, false, false, &strings.Builder{}); err == nil {
		t.Fatal("want error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if err := run(bad, 1, "auto", 12, false, false, false, &strings.Builder{}); err == nil {
		t.Fatal("want error for malformed JSON")
	}
	if err := run(fig1File(t), 1, "warp-drive", 12, false, false, false, &strings.Builder{}); err == nil {
		t.Fatal("want error for unknown strategy")
	}
	if err := run(fig1File(t), 0, "auto", 12, false, false, false, &strings.Builder{}); err == nil {
		t.Fatal("want error for k=0")
	}
}
