// Command bcast-opt computes an index-and-data allocation for a tree
// produced by bcast-gen (or hand-written Spec JSON) and prints the
// channel/slot grid together with the average data wait.
//
// Example:
//
//	bcast-gen -type mary -m 2 -depth 3 | bcast-opt -k 2 -strategy auto
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/datatree"
	"repro/internal/topo"
	"repro/internal/tree"
)

func main() {
	var (
		in       = flag.String("tree", "", "tree JSON file (default stdin)")
		k        = flag.Int("k", 1, "number of broadcast channels")
		strategy = flag.String("strategy", "auto", "auto | exact | pruned-search | data-tree | sorting | shrinking | partitioning")
		maxExact = flag.Int("max-exact", 12, "auto: largest data count still solved exactly")
		dot      = flag.Bool("dot", false, "also print the tree in Graphviz DOT")
		showTree = flag.Bool("show-tree", false, "print the pruned topological tree (small instances)")
		showData = flag.Bool("show-datatree", false, "print the pruned single-channel data tree (k=1, small instances)")
	)
	flag.Parse()
	if err := run(*in, *k, *strategy, *maxExact, *dot, *showTree, *showData, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-opt:", err)
		os.Exit(1)
	}
}

func run(in string, k int, strategy string, maxExact int, dot, showTree, showData bool, w io.Writer) error {
	var data []byte
	var err error
	if in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}
	t, err := tree.ParseJSON(data)
	if err != nil {
		return err
	}
	strat, err := core.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	sol, err := core.Solve(t, core.Config{Channels: k, Strategy: strat, MaxExactData: maxExact})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tree: %d nodes (%d data), depth %d, total weight %g\n",
		t.NumNodes(), t.NumData(), t.Depth(), t.TotalWeight())
	fmt.Fprintf(w, "strategy: %s (optimal: %v)\n", sol.Used, sol.Optimal)
	if sol.Expanded > 0 {
		fmt.Fprintf(w, "search: %d expanded, %d generated\n", sol.Expanded, sol.Generated)
	}
	fmt.Fprintf(w, "average data wait: %.4f buckets over %d slots\n\n", sol.Cost, sol.Alloc.NumSlots())
	fmt.Fprintln(w, sol.Alloc)
	if showTree {
		root, count, err := topo.BuildTree(t, topo.Options{
			Channels: k, Prune: topo.AllPrunes(), TightBound: true,
		}, 100000)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\npruned topological tree (%d nodes, %d paths; * = Property 1 completion):\n",
			count, root.Leaves())
		if err := topo.Render(w, t, root); err != nil {
			return err
		}
	}
	if showData {
		if k != 1 {
			return fmt.Errorf("-show-datatree requires -k 1")
		}
		root, count, err := datatree.BuildTree(t, datatree.AllOptions(), 100000)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\npruned data tree (%d nodes; {Nancestor},{Cancestor} per step):\n", count)
		if err := datatree.Render(w, t, root); err != nil {
			return err
		}
	}
	if dot {
		fmt.Fprintln(w)
		fmt.Fprint(w, t.DOT())
	}
	return nil
}
