// Command bcast-station runs the full broadcast-server loop on a
// synthetic shifting-demand trace: the station tracks requests over a key
// universe, keeps the hottest items on the air, and re-optimizes the
// broadcast when demand drifts. Per period it prints the hot set, demand
// coverage and hit ratio.
//
// Example:
//
//	bcast-station -universe 50 -hot 8 -k 2 -periods 12 -shift 6
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"

	"repro/broadcast"
	"repro/internal/stats"
)

func main() {
	var (
		universe = flag.Int("universe", 40, "catalog size (keys 1..N)")
		hot      = flag.Int("hot", 6, "broadcast capacity in items")
		k        = flag.Int("k", 2, "broadcast channels")
		periods  = flag.Int("periods", 10, "demand periods to simulate")
		perP     = flag.Int("requests", 500, "requests per period")
		shift    = flag.Int("shift", 5, "period at which demand shifts to the cold tail")
		theta    = flag.Float64("theta", 0.9, "zipf skew of the demand")
		decay    = flag.Float64("decay", 0.4, "demand decay per period")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*universe, *hot, *k, *periods, *perP, *shift, *theta, *decay, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-station:", err)
		os.Exit(1)
	}
}

func run(universe, hot, k, periods, perP, shift int, theta, decay float64, seed int64, w io.Writer) error {
	if universe < hot {
		return fmt.Errorf("universe %d smaller than hot set %d", universe, hot)
	}
	items := make([]broadcast.Item, universe)
	for i := range items {
		items[i] = broadcast.Item{
			Label:  fmt.Sprintf("item-%03d", i+1),
			Key:    int64(i + 1),
			Weight: 1, // flat prior: demand is learned, not assumed
		}
	}
	station, err := broadcast.NewStation(items, broadcast.StationConfig{
		HotSize:  hot,
		Channels: k,
		Decay:    decay,
	})
	if err != nil {
		return err
	}

	rng := stats.NewRNG(seed)
	zipfKey := func(offset int) int64 {
		// Zipf-ranked key with the rank order rotated by offset, so the
		// post-shift era favors a different part of the universe.
		total := 0.0
		weights := make([]float64, universe)
		for r := 0; r < universe; r++ {
			weights[r] = 1 / math.Pow(float64(r+1), theta)
			total += weights[r]
		}
		x := rng.Float64() * total
		for r := 0; r < universe; r++ {
			if x -= weights[r]; x <= 0 {
				return int64((r+offset)%universe + 1)
			}
		}
		return int64(universe)
	}

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "period\trebuilt\tcoverage\thit ratio\tdata wait")
	for p := 1; p <= periods; p++ {
		offset := 0
		if p > shift {
			offset = universe / 2
		}
		hits := 0
		for i := 0; i < perP; i++ {
			if station.Record(zipfKey(offset)) {
				hits++
			}
		}
		rebuilt, coverage, err := station.EndPeriod()
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%v\t%.1f%%\t%.1f%%\t%.3f\n",
			p, rebuilt, 100*coverage, 100*float64(hits)/float64(perP),
			station.Schedule().DataWait())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	totalHits, totalMisses, rebuilds := station.Stats()
	fmt.Fprintf(w, "\ntotals: %d hits, %d misses, %d rebuilds\n", totalHits, totalMisses, rebuilds)
	fmt.Fprintf(w, "final broadcast:\n%s\n", station.Schedule().Alloc)
	return nil
}
