// Command bcast-station runs the full broadcast-server loop on a
// synthetic shifting-demand trace: the station tracks requests over a key
// universe, keeps the hottest items on the air, and re-optimizes the
// broadcast when demand drifts. Per period it prints the hot set, demand
// coverage and hit ratio.
//
// With -async the rebuild runs the way a live tower does it: each period
// end kicks the epoch planner goroutine, the solved program is staged in
// the epoch registry while the old broadcast stays on the air, and the
// swap (plus the station's hot-set install) lands at the next period
// boundary — demand adaptation with a one-period adoption lag instead of
// a planning stall on the air path.
//
// With -obs addr the process serves its observability endpoint — JSON
// metrics at /metrics, recent trace events at /trace, and net/http/pprof
// under /debug/pprof/ — on that address for the lifetime of the run
// (bind loopback; the endpoint is unauthenticated), holds it open for
// -obs-hold afterwards so a scraper can catch a finished run, and dumps
// a final text snapshot of every metric to stderr on shutdown.
//
// With -checkpoint PATH (async only) the epoch registry is persisted at
// every period boundary with the tower's checkpoint codec, and -resume
// warm-starts the next run from that file: epoch IDs, lifecycle counters
// and the span history continue across the restart instead of resetting,
// while the demand counters — deliberately not checkpointed — are
// relearned from live traffic. A missing or corrupt file falls back to a
// cold start.
//
// Example:
//
//	bcast-station -universe 50 -hot 8 -k 2 -periods 12 -shift 6
//	bcast-station -universe 50 -hot 8 -periods 12 -async
//	bcast-station -periods 6 -async -obs 127.0.0.1:9477 -obs-hold 30s
//	bcast-station -periods 6 -async -checkpoint /tmp/station.ckpt -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"text/tabwriter"
	"time"

	"repro/broadcast"
	"repro/internal/epoch"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		universe = flag.Int("universe", 40, "catalog size (keys 1..N)")
		hot      = flag.Int("hot", 6, "broadcast capacity in items")
		k        = flag.Int("k", 2, "broadcast channels")
		periods  = flag.Int("periods", 10, "demand periods to simulate")
		perP     = flag.Int("requests", 500, "requests per period")
		shift    = flag.Int("shift", 5, "period at which demand shifts to the cold tail")
		theta    = flag.Float64("theta", 0.9, "zipf skew of the demand")
		decay    = flag.Float64("decay", 0.4, "demand decay per period")
		seed     = flag.Int64("seed", 1, "random seed")
		async    = flag.Bool("async", false, "plan rebuilds in the background epoch planner and hot-swap at period boundaries")
		obsAddr  = flag.String("obs", "", "serve /metrics, /trace and /debug/pprof on this address (bind loopback, e.g. 127.0.0.1:0)")
		obsHold  = flag.Duration("obs-hold", 0, "keep the -obs endpoint serving this long after the run completes")
		ckpt     = flag.String("checkpoint", "", "persist the epoch registry to this file at each period boundary (-async only)")
		resume   = flag.Bool("resume", false, "warm-start the epoch registry from -checkpoint when it holds a valid snapshot")
	)
	flag.Parse()
	if *resume && *ckpt == "" {
		fmt.Fprintln(os.Stderr, "bcast-station: -resume requires -checkpoint")
		os.Exit(1)
	}
	if *ckpt != "" && !*async {
		fmt.Fprintln(os.Stderr, "bcast-station: -checkpoint requires -async (the epoch-registry path)")
		os.Exit(1)
	}
	var r *obs.Registry
	var obsSrv *obs.Server
	if *obsAddr != "" {
		r = obs.NewWithOptions(obs.Options{Clock: func() int64 { return time.Now().UnixNano() }})
		var err error
		if obsSrv, err = obs.Serve(*obsAddr, r); err != nil {
			fmt.Fprintln(os.Stderr, "bcast-station:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obs: serving http://%s/metrics\n", obsSrv.Addr())
	}
	var err error
	if *async {
		err = runAsync(*universe, *hot, *k, *periods, *perP, *shift, *theta, *decay, *seed, *ckpt, *resume, os.Stdout, r)
	} else {
		err = run(*universe, *hot, *k, *periods, *perP, *shift, *theta, *decay, *seed, os.Stdout, r)
	}
	if obsSrv != nil {
		if err == nil && *obsHold > 0 {
			time.Sleep(*obsHold)
		}
		obsSrv.Close()
		fmt.Fprintln(os.Stderr, "\nobs: final metrics snapshot")
		r.WriteText(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcast-station:", err)
		os.Exit(1)
	}
}

func run(universe, hot, k, periods, perP, shift int, theta, decay float64, seed int64, w io.Writer, r *obs.Registry) error {
	if universe < hot {
		return fmt.Errorf("universe %d smaller than hot set %d", universe, hot)
	}
	items := make([]broadcast.Item, universe)
	for i := range items {
		items[i] = broadcast.Item{
			Label:  fmt.Sprintf("item-%03d", i+1),
			Key:    int64(i + 1),
			Weight: 1, // flat prior: demand is learned, not assumed
		}
	}
	station, err := broadcast.NewStation(items, broadcast.StationConfig{
		HotSize:  hot,
		Channels: k,
		Decay:    decay,
		Obs:      r,
	})
	if err != nil {
		return err
	}

	rng := stats.NewRNG(seed)
	zipfKey := func(offset int) int64 {
		// Zipf-ranked key with the rank order rotated by offset, so the
		// post-shift era favors a different part of the universe.
		total := 0.0
		weights := make([]float64, universe)
		for r := 0; r < universe; r++ {
			weights[r] = 1 / math.Pow(float64(r+1), theta)
			total += weights[r]
		}
		x := rng.Float64() * total
		for r := 0; r < universe; r++ {
			if x -= weights[r]; x <= 0 {
				return int64((r+offset)%universe + 1)
			}
		}
		return int64(universe)
	}

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "period\trebuilt\tcoverage\thit ratio\tdata wait")
	for p := 1; p <= periods; p++ {
		offset := 0
		if p > shift {
			offset = universe / 2
		}
		hits := 0
		for i := 0; i < perP; i++ {
			if station.Record(zipfKey(offset)) {
				hits++
			}
		}
		rebuilt, coverage, err := station.EndPeriod()
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%v\t%.1f%%\t%.1f%%\t%.3f\n",
			p, rebuilt, 100*coverage, 100*float64(hits)/float64(perP),
			station.Schedule().DataWait())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	totalHits, totalMisses, rebuilds := station.Stats()
	fmt.Fprintf(w, "\ntotals: %d hits, %d misses, %d rebuilds\n", totalHits, totalMisses, rebuilds)
	fmt.Fprintf(w, "final broadcast:\n%s\n", station.Schedule().Alloc)
	return nil
}

// runAsync drives the same trace through the live-tower pipeline: the
// station's three rebuild phases are split apart, with PlanSelection
// running inside an epoch.Planner goroutine that stages each solved
// program in an epoch.Registry, and the swap — registry promotion plus
// the station's hot-set install — landing only at the next period
// boundary, the way the netcast tower promotes epochs only at cycle
// boundaries. The broadcast therefore never waits on a solve; the price
// is one period of adoption lag, visible in the hit-ratio column.
func runAsync(universe, hot, k, periods, perP, shift int, theta, decay float64, seed int64, ckpt string, resume bool, w io.Writer, r *obs.Registry) error {
	if universe < hot {
		return fmt.Errorf("universe %d smaller than hot set %d", universe, hot)
	}
	items := make([]broadcast.Item, universe)
	for i := range items {
		items[i] = broadcast.Item{
			Label:  fmt.Sprintf("item-%03d", i+1),
			Key:    int64(i + 1),
			Weight: 1,
		}
	}
	station, err := broadcast.NewStation(items, broadcast.StationConfig{
		HotSize:  hot,
		Channels: k,
		Decay:    decay,
		Obs:      r,
	})
	if err != nil {
		return err
	}

	// Crash recovery: with -checkpoint the registry is persisted at every
	// period boundary, and -resume warm-starts from that file so epoch IDs,
	// lifecycle counters and the span history continue across the restart.
	// The demand counters are deliberately not checkpointed — the station
	// relearns them from live traffic — so only the epoch lifecycle
	// survives the crash. The station airs one broadcast cycle per demand
	// period, which fixes the slot arithmetic the checkpoint codec checks.
	var (
		reg        *epoch.Registry
		aired      int          // absolute slots aired so far
		epochStart int          // slot the active program went on the air
		spans      []epoch.Span // span history, oldest first
	)
	if resume {
		if c, lerr := epoch.LoadCheckpoint(ckpt); lerr != nil {
			fmt.Fprintf(w, "cold start: %v\n", lerr)
		} else if reg, lerr = epoch.RestoreRegistry(c); lerr != nil {
			fmt.Fprintf(w, "cold start: %v\n", lerr)
			reg = nil
		} else {
			aired, epochStart = c.Now, c.EpochStart
			spans = append(spans, c.Spans...)
			cur, _, nextID, _, _ := reg.Snapshot()
			fmt.Fprintf(w, "warm start: resumed epoch %d at slot %d (%d spans, next epoch %d)\n",
				cur.ID, aired, len(spans), nextID)
			// A checkpointed pending epoch outlived the process, but its hot-set
			// selection did not: promote it so the lifecycle stays monotone and
			// let the station keep its relearned selection.
			if entry, swapped := reg.TrySwap(); swapped {
				spans = append(spans, epoch.Span{Start: aired, CycleLen: entry.Prog.CycleLen()})
				epochStart = aired
				fmt.Fprintf(w, "warm start: promoted checkpointed pending epoch %d (hot set relearned)\n", entry.ID)
			}
		}
	}
	if reg == nil {
		var err error
		reg, err = epoch.NewRegistry(station.Schedule().Program())
		if err != nil {
			return err
		}
		spans = []epoch.Span{{Start: 0, CycleLen: station.Schedule().Program().CycleLen()}}
	}
	// The planner snapshot: the selection the next build should plan for,
	// and the schedule that build produced (installed only when its epoch
	// is promoted).
	type plan struct {
		sel   []broadcast.HotKey
		sched *broadcast.Schedule
	}
	var pmu sync.Mutex
	var next []broadcast.HotKey
	var built *plan
	planner := epoch.NewPlannerOpts(context.Background(), reg, func(ctx context.Context) (*sim.Program, error) {
		pmu.Lock()
		sel := append([]broadcast.HotKey(nil), next...)
		pmu.Unlock()
		sched, err := station.PlanSelection(sel)
		if err != nil {
			return nil, err
		}
		pmu.Lock()
		built = &plan{sel: sel, sched: sched}
		pmu.Unlock()
		return sched.Program(), nil
	}, epoch.PlannerOptions{Obs: r})
	defer planner.Close()

	// awaitPlanner blocks until the kicked build has either staged or
	// failed, so each period's table row is deterministic.
	awaitPlanner := func(builds int) error {
		for {
			st, lastErr := planner.Stats()
			if st.Staged+st.Failed >= builds {
				if st.Failed > 0 {
					return lastErr
				}
				return nil
			}
			time.Sleep(time.Millisecond)
		}
	}

	rng := stats.NewRNG(seed)
	zipfKey := func(offset int) int64 {
		total := 0.0
		weights := make([]float64, universe)
		for r := 0; r < universe; r++ {
			weights[r] = 1 / math.Pow(float64(r+1), theta)
			total += weights[r]
		}
		x := rng.Float64() * total
		for r := 0; r < universe; r++ {
			if x -= weights[r]; x <= 0 {
				return int64((r+offset)%universe + 1)
			}
		}
		return int64(universe)
	}

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "period\tepoch\tswapped\tcoverage\thit ratio\tdata wait")
	builds := 0
	for p := 1; p <= periods; p++ {
		// Period boundary: promote whatever the planner staged last
		// period and install its hot set — the tower's cycle-boundary
		// swap, one period behind the demand that justified it.
		entry, swapped := reg.TrySwap()
		if swapped {
			spans = append(spans, epoch.Span{Start: aired, CycleLen: entry.Prog.CycleLen()})
			epochStart = aired
			pmu.Lock()
			done := built
			pmu.Unlock()
			// A promoted epoch whose plan snapshot is missing means the
			// build failed; InstallPlanned surfaces that as a typed error
			// instead of dereferencing a nil plan or silently keeping the
			// stale hot set.
			var sel []broadcast.HotKey
			var sched *broadcast.Schedule
			if done != nil {
				sel, sched = done.sel, done.sched
			}
			if err := station.InstallPlanned(sel, sched); err != nil {
				return err
			}
		}

		offset := 0
		if p > shift {
			offset = universe / 2
		}
		hits := 0
		for i := 0; i < perP; i++ {
			if station.Record(zipfKey(offset)) {
				hits++
			}
		}

		sel, coverage := station.ClosePeriod()
		pmu.Lock()
		next = sel
		pmu.Unlock()
		planner.Request()
		builds++
		if err := awaitPlanner(builds); err != nil {
			return err
		}

		fmt.Fprintf(tw, "%d\t%d\t%v\t%.1f%%\t%.1f%%\t%.3f\n",
			p, entry.ID, swapped, 100*coverage, 100*float64(hits)/float64(perP),
			station.Schedule().DataWait())

		// Period boundary: one cycle of the active program has aired;
		// checkpoint the registry so a killed station warm-starts here.
		aired += entry.Prog.CycleLen()
		if ckpt != "" {
			if err := epoch.WriteCheckpoint(ckpt, reg.CheckpointState(aired, epochStart, spans)); err != nil {
				return err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	totalHits, totalMisses, rebuilds := station.Stats()
	st, _ := planner.Stats()
	staged, swapped := reg.Stats()
	fmt.Fprintf(w, "\ntotals: %d hits, %d misses, %d installs; planner: %d builds, %d staged, %d failed; registry: %d staged, %d swapped\n",
		totalHits, totalMisses, rebuilds, st.Builds, st.Staged, st.Failed, staged, swapped)
	fmt.Fprintf(w, "final broadcast:\n%s\n", station.Schedule().Alloc)
	return nil
}
