package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStationObsEndpoint is the -obs integration pin: the same wiring
// main performs for `-obs 127.0.0.1:0` — wall-clock registry, HTTP
// endpoint, instrumented async run — must serve /metrics, /trace and
// pprof over the wire, with the station, planner and solver counters
// actually moving during the run.
func TestStationObsEndpoint(t *testing.T) {
	r := obs.NewWithOptions(obs.Options{Clock: func() int64 { return time.Now().UnixNano() }})
	srv, err := obs.Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var sb strings.Builder
	if err := runAsync(30, 5, 2, 8, 400, 4, 0.9, 0.4, 1, "", false, &sb, r); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap obs.Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	// Every period kicks a build, and each build plans + bridges the
	// solver's effort; the acceptance criterion is that these moved.
	for _, c := range []string{
		"station_periods_total", "station_plans_total", "station_installs_total",
		"station_hits_total", "station_misses_total",
		"epoch_requests_total", "epoch_builds_total", "epoch_staged_total",
		"search_generated_total",
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s did not move; counters: %+v", c, snap.Counters)
		}
	}
	if snap.Histograms["epoch_rebuild_ns"].Count == 0 || snap.Histograms["station_plan_ns"].Count == 0 {
		t.Errorf("latency histograms empty: %+v", snap.Histograms)
	}

	var events []obs.Event
	if err := json.Unmarshal(get("/trace"), &events); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	for _, k := range []string{"period_close", "plan", "install", "rebuild"} {
		if !kinds[k] {
			t.Errorf("trace carries no %q events", k)
		}
	}

	if body := string(get("/debug/pprof/")); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index does not list profiles: %.100s", body)
	}
}
