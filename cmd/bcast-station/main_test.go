package main

import (
	"strings"
	"testing"
)

func TestStationLoopShiftsHotSet(t *testing.T) {
	var sb strings.Builder
	if err := run(30, 5, 2, 8, 400, 4, 0.9, 0.4, 1, &sb, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rebuilds") {
		t.Fatalf("missing totals:\n%s", out)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("the demand shift never triggered a rebuild:\n%s", out)
	}
	if !strings.Contains(out, "final broadcast:") {
		t.Fatalf("missing final allocation:\n%s", out)
	}
}

func TestStationLoopErrors(t *testing.T) {
	if err := run(3, 5, 1, 2, 10, 1, 0.9, 0.4, 1, &strings.Builder{}, nil); err == nil {
		t.Fatal("want error for universe < hot")
	}
}

func TestStationAsyncPipelinesRebuilds(t *testing.T) {
	var sb strings.Builder
	if err := runAsync(30, 5, 2, 8, 400, 4, 0.9, 0.4, 1, &sb, nil); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	// Every period kicks a build; the first period still airs epoch 1 and
	// each later one airs the epoch staged the period before.
	if !strings.Contains(out, "planner: 8 builds, 8 staged, 0 failed") {
		t.Fatalf("planner did not stage every build:\n%s", out)
	}
	if !strings.Contains(out, "registry: 8 staged, 7 swapped") {
		t.Fatalf("swaps did not trail stagings by exactly one period:\n%s", out)
	}
	if !strings.Contains(out, "8 installs") {
		t.Fatalf("hot-set installs did not track the swaps:\n%s", out)
	}
	if !strings.Contains(out, "final broadcast:") {
		t.Fatalf("missing final allocation:\n%s", out)
	}
}

func TestStationAsyncErrors(t *testing.T) {
	if err := runAsync(3, 5, 1, 2, 10, 1, 0.9, 0.4, 1, &strings.Builder{}, nil); err == nil {
		t.Fatal("want error for universe < hot")
	}
}
