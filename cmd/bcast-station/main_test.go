package main

import (
	"strings"
	"testing"
)

func TestStationLoopShiftsHotSet(t *testing.T) {
	var sb strings.Builder
	if err := run(30, 5, 2, 8, 400, 4, 0.9, 0.4, 1, &sb, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rebuilds") {
		t.Fatalf("missing totals:\n%s", out)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("the demand shift never triggered a rebuild:\n%s", out)
	}
	if !strings.Contains(out, "final broadcast:") {
		t.Fatalf("missing final allocation:\n%s", out)
	}
}

func TestStationLoopErrors(t *testing.T) {
	if err := run(3, 5, 1, 2, 10, 1, 0.9, 0.4, 1, &strings.Builder{}, nil); err == nil {
		t.Fatal("want error for universe < hot")
	}
}

func TestStationAsyncPipelinesRebuilds(t *testing.T) {
	var sb strings.Builder
	if err := runAsync(30, 5, 2, 8, 400, 4, 0.9, 0.4, 1, "", false, &sb, nil); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	// Every period kicks a build; the first period still airs epoch 1 and
	// each later one airs the epoch staged the period before.
	if !strings.Contains(out, "planner: 8 builds, 8 staged, 0 failed") {
		t.Fatalf("planner did not stage every build:\n%s", out)
	}
	if !strings.Contains(out, "registry: 8 staged, 7 swapped") {
		t.Fatalf("swaps did not trail stagings by exactly one period:\n%s", out)
	}
	if !strings.Contains(out, "8 installs") {
		t.Fatalf("hot-set installs did not track the swaps:\n%s", out)
	}
	if !strings.Contains(out, "final broadcast:") {
		t.Fatalf("missing final allocation:\n%s", out)
	}
}

func TestStationAsyncErrors(t *testing.T) {
	if err := runAsync(3, 5, 1, 2, 10, 1, 0.9, 0.4, 1, "", false, &strings.Builder{}, nil); err == nil {
		t.Fatal("want error for universe < hot")
	}
}

func TestStationCheckpointResume(t *testing.T) {
	ckpt := t.TempDir() + "/station.ckpt"
	var first strings.Builder
	if err := runAsync(30, 5, 2, 4, 400, 2, 0.9, 0.4, 1, ckpt, false, &first, nil); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, first.String())
	}
	// 4 periods staged 4 epochs and swapped 3, so the checkpointed registry
	// resumes with epoch 4 active and the 4-period pending (epoch 5) still
	// staged; the warm start promotes that pending without a hot-set install.
	var second strings.Builder
	if err := runAsync(30, 5, 2, 4, 400, 2, 0.9, 0.4, 2, ckpt, true, &second, nil); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, second.String())
	}
	out := second.String()
	if !strings.Contains(out, "warm start: resumed epoch 4") {
		t.Fatalf("registry did not resume from the checkpoint:\n%s", out)
	}
	if !strings.Contains(out, "promoted checkpointed pending epoch 5") {
		t.Fatalf("checkpointed pending epoch was not promoted:\n%s", out)
	}
	// Epoch IDs continue across the restart: the resumed run airs 5..8,
	// never reusing an ID the first run aired, and the registry's lifecycle
	// counters accumulate across both processes.
	lastEpoch := ""
	for _, line := range strings.Split(out, "\n") {
		if f := strings.Fields(line); len(f) >= 2 && f[0] == "4" {
			lastEpoch = f[1]
		}
	}
	if lastEpoch != "8" {
		t.Fatalf("final period aired epoch %q, want 8 (IDs must continue past the checkpoint):\n%s", lastEpoch, out)
	}
	if !strings.Contains(out, "registry: 8 staged, 7 swapped") {
		t.Fatalf("lifecycle counters did not continue past the checkpoint:\n%s", out)
	}
	// A garbage file falls back to a cold start instead of failing the run.
	bad := t.TempDir() + "/bad.ckpt"
	if err := runAsync(30, 5, 2, 2, 400, 1, 0.9, 0.4, 1, bad, true, &strings.Builder{}, nil); err != nil {
		t.Fatalf("missing checkpoint did not fall back cold: %v", err)
	}
}
