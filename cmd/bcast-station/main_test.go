package main

import (
	"strings"
	"testing"
)

func TestStationLoopShiftsHotSet(t *testing.T) {
	var sb strings.Builder
	if err := run(30, 5, 2, 8, 400, 4, 0.9, 0.4, 1, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rebuilds") {
		t.Fatalf("missing totals:\n%s", out)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("the demand shift never triggered a rebuild:\n%s", out)
	}
	if !strings.Contains(out, "final broadcast:") {
		t.Fatalf("missing final allocation:\n%s", out)
	}
}

func TestStationLoopErrors(t *testing.T) {
	if err := run(3, 5, 1, 2, 10, 1, 0.9, 0.4, 1, &strings.Builder{}); err == nil {
		t.Fatal("want error for universe < hot")
	}
}
