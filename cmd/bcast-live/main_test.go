package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/alphatree"
	"repro/internal/tree"
)

func catalogFile(t *testing.T, n int) string {
	t.Helper()
	items := make([]alphatree.Item, n)
	for i := range items {
		items[i] = alphatree.Item{Label: "k", Key: int64(i + 1), Weight: float64(10 * (n - i))}
	}
	tr, err := alphatree.HuTucker(items)
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLiveEndToEnd(t *testing.T) {
	var sb strings.Builder
	if err := run(catalogFile(t, 8), liveOpts{k: 2, clients: 4, seed: 1}, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "all 4 live lookups matched the analytic simulator exactly") {
		t.Fatalf("missing success line:\n%s", out)
	}
	if strings.Contains(out, "false") {
		t.Fatalf("some lookup failed or diverged:\n%s", out)
	}
}

func TestLiveSingleClient(t *testing.T) {
	var sb strings.Builder
	if err := run(catalogFile(t, 3), liveOpts{k: 1, clients: 1, seed: 2}, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
}

func TestLiveRejectsUnkeyedTree(t *testing.T) {
	data, err := tree.Fig1().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unkeyed.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, liveOpts{k: 1, clients: 1, seed: 1}, &strings.Builder{}); err == nil {
		t.Fatal("want error for unkeyed tree")
	}
}

func TestLiveMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "none.json"), liveOpts{k: 1, clients: 1, seed: 1}, &strings.Builder{}); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestLiveLossyEndToEnd(t *testing.T) {
	var sb strings.Builder
	opt := liveOpts{k: 2, clients: 4, seed: 3, drop: 0.2, corrupt: 0.1, stall: 0.1, retries: 64}
	if err := run(catalogFile(t, 8), opt, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "lossy medium") {
		t.Fatalf("missing fault banner:\n%s", out)
	}
	if !strings.Contains(out, "all 4 live lookups matched the analytic simulator exactly") {
		t.Fatalf("missing success line:\n%s", out)
	}
}

func TestLiveHotSwapEndToEnd(t *testing.T) {
	var sb strings.Builder
	opt := liveOpts{k: 3, clients: 6, seed: 1, swap: 5}
	if err := run(catalogFile(t, 10), opt, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "hot swap: epoch 2") {
		t.Fatalf("missing swap banner:\n%s", out)
	}
	if !strings.Contains(out, "swaps landed: 1") {
		t.Fatalf("the staged epoch never landed (or landed twice):\n%s", out)
	}
	if !strings.Contains(out, "all 6 live lookups matched the adaptive simulator exactly") {
		t.Fatalf("missing success line:\n%s", out)
	}
}

func TestLiveHotSwapLossy(t *testing.T) {
	var sb strings.Builder
	opt := liveOpts{k: 3, clients: 5, seed: 7, swap: 5, drop: 0.2, corrupt: 0.1, retries: 64}
	if err := run(catalogFile(t, 10), opt, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "lossy medium") {
		t.Fatalf("missing fault banner:\n%s", out)
	}
	if !strings.Contains(out, "all 5 live lookups matched the adaptive simulator exactly") {
		t.Fatalf("missing success line:\n%s", out)
	}
}

func TestLiveOutageEndToEnd(t *testing.T) {
	var sb strings.Builder
	out, err := parseOutages("1:12:60,2:30:70")
	if err != nil {
		t.Fatal(err)
	}
	opt := liveOpts{k: 3, clients: 8, seed: 1, drop: 0.1, retries: 48, outages: out}
	if err := run(catalogFile(t, 12), opt, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	got := sb.String()
	if !strings.Contains(got, "replans will air") {
		t.Fatalf("missing outage banner:\n%s", got)
	}
	if !strings.Contains(got, "all 8 live lookups matched the outage simulator exactly") {
		t.Fatalf("missing success line:\n%s", got)
	}
	if !strings.Contains(got, "channels live: [1 2 3]") {
		t.Fatalf("tower did not recover to full width:\n%s", got)
	}
}

func TestLiveOutageFlagErrors(t *testing.T) {
	if _, err := parseOutages("1:10"); err == nil {
		t.Fatal("want error for malformed window")
	}
	if _, err := parseOutages("0:10:20"); err == nil {
		t.Fatal("want error for channel 0")
	}
	if _, err := parseOutages("1:20:10"); err == nil {
		t.Fatal("want error for inverted window")
	}
}

func TestLiveBatchEndToEnd(t *testing.T) {
	var sb strings.Builder
	opt := liveOpts{k: 2, clients: 4, seed: 1, batchKeys: []int64{1, 3, 5, 7}}
	if err := run(catalogFile(t, 8), opt, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "batch retrieval: 4 keys per client") {
		t.Fatalf("missing batch banner:\n%s", out)
	}
	if !strings.Contains(out, "all 4 live batch retrievals matched the analytic simulator exactly") {
		t.Fatalf("missing success line:\n%s", out)
	}
	if strings.Contains(out, "false") {
		t.Fatalf("some batch diverged:\n%s", out)
	}
}

func TestLiveBatchLossy(t *testing.T) {
	var sb strings.Builder
	opt := liveOpts{k: 2, clients: 3, seed: 5, drop: 0.2, corrupt: 0.1, retries: 64,
		batchKeys: []int64{2, 4, 6}}
	if err := run(catalogFile(t, 8), opt, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "lossy medium") {
		t.Fatalf("missing fault banner:\n%s", out)
	}
	if !strings.Contains(out, "all 3 live batch retrievals matched the analytic simulator exactly") {
		t.Fatalf("missing success line:\n%s", out)
	}
}

func TestLiveBatchFlagErrors(t *testing.T) {
	if _, err := parseBatchKeys("1,x,3"); err == nil {
		t.Fatal("want error for non-numeric key")
	}
	keys, err := parseBatchKeys(" 1, 2 ,3")
	if err != nil || len(keys) != 3 {
		t.Fatalf("parseBatchKeys = %v, %v", keys, err)
	}
	path := catalogFile(t, 4)
	if err := run(path, liveOpts{k: 1, clients: 1, seed: 1, batchKeys: []int64{99}}, &strings.Builder{}); err == nil {
		t.Fatal("want error for key missing from the catalog")
	}
	opt := liveOpts{k: 1, clients: 1, seed: 1, batchKeys: []int64{1}, swap: 5}
	if err := run(path, opt, &strings.Builder{}); err == nil {
		t.Fatal("want error combining -batch with -swap")
	}
}

func TestLiveBudgetExhaustionAgrees(t *testing.T) {
	var sb strings.Builder
	opt := liveOpts{k: 1, clients: 2, seed: 4, drop: 1, retries: 3}
	if err := run(catalogFile(t, 4), opt, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "budget exhausted (as predicted)") {
		t.Fatalf("missing agreement line:\n%s", sb.String())
	}
}
