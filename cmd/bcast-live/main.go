// Command bcast-live runs the whole system for real: it optimizes a tree,
// serves the wire-encoded broadcast over TCP on a loopback port, spawns
// concurrent clients that perform keyed lookups through the socket
// protocol, and cross-checks every measured metric against the analytic
// simulator.
//
// Example:
//
//	bcast-gen -type catalog -n 12 | bcast-live -k 2 -clients 8
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/netcast"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

func main() {
	var (
		in      = flag.String("tree", "", "tree JSON file (default stdin); must be keyed (bcast-gen -type catalog)")
		k       = flag.Int("k", 2, "number of broadcast channels")
		clients = flag.Int("clients", 5, "concurrent lookup clients")
		seed    = flag.Int64("seed", 1, "seed for client arrivals and keys")
	)
	flag.Parse()
	if err := run(*in, *k, *clients, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-live:", err)
		os.Exit(1)
	}
}

func run(in string, k, clients int, seed int64, w io.Writer) error {
	var data []byte
	var err error
	if in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}
	t, err := tree.ParseJSON(data)
	if err != nil {
		return err
	}
	if !t.Keyed() {
		return fmt.Errorf("tree must be keyed for live lookups (use bcast-gen -type catalog)")
	}
	sol, err := core.Solve(t, core.Config{Channels: k})
	if err != nil {
		return err
	}
	prog, err := sim.Compile(sol.Alloc, sim.Options{})
	if err != nil {
		return err
	}

	server, err := netcast.NewServer(prog)
	if err != nil {
		return err
	}
	defer server.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server.Serve(ln)
	fmt.Fprintf(w, "broadcasting %d nodes over %d channels at %s (cycle %d slots)\n\n",
		t.NumNodes(), k, ln.Addr(), prog.CycleLen())

	power := sim.Power{Active: 1, Doze: 0.05}
	rng := stats.NewRNG(seed)
	dataIDs := t.DataIDs()

	type outcome struct {
		idx     int
		arrival int
		key     int64
		found   bool
		m       sim.Metrics
		want    sim.Metrics
		err     error
	}
	done := make(chan outcome, clients)
	for i := 0; i < clients; i++ {
		target := dataIDs[rng.Intn(len(dataIDs))]
		key, _ := t.Key(target)
		arrival := rng.Intn(2 * prog.CycleLen())
		want, err := prog.Query(arrival, target, power)
		if err != nil {
			return err
		}
		go func(idx, arrival int, key int64, want sim.Metrics) {
			c, err := netcast.Dial(ln.Addr().String())
			if err != nil {
				done <- outcome{idx: idx, err: err}
				return
			}
			defer c.Close()
			found, _, m, err := c.Lookup(arrival, key, power)
			done <- outcome{idx, arrival, key, found, m, want, err}
		}(i, arrival, key, want)
	}

	// Drive the broadcast once every client is connected, so nobody's
	// arrival slot can pass before they are registered.
	go func() {
		server.AwaitConns(clients)
		server.Run(2*prog.CycleLen()*(clients+2) + 16)
	}()

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "client\tarrival\tkey\tfound\taccess\ttuning\tenergy\tmatches simulator")
	failures := 0
	for i := 0; i < clients; i++ {
		o := <-done
		if o.err != nil {
			return fmt.Errorf("client %d: %w", o.idx, o.err)
		}
		match := o.m == o.want
		if !match || !o.found {
			failures++
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%d\t%d\t%.2f\t%v\n",
			o.idx, o.arrival, o.key, o.found, o.m.AccessTime, o.m.TuningTime, o.m.Energy, match)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d clients diverged from the simulator", failures, clients)
	}
	fmt.Fprintf(w, "\nall %d live lookups matched the analytic simulator exactly\n", clients)
	return nil
}
