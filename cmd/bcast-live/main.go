// Command bcast-live runs the whole system for real: it optimizes a tree,
// serves the wire-encoded broadcast over TCP on a loopback port, spawns
// concurrent clients that perform keyed lookups through the socket
// protocol, and cross-checks every measured metric against the analytic
// simulator. With -drop/-corrupt/-stall the broadcast medium is degraded
// by the seeded fault model and the cross-check runs against the analytic
// lossy simulator instead — the metrics, including retry counts, must
// still match exactly.
//
// With -outage CH:START:END (repeatable via commas) channels go dark for
// whole windows of absolute slots: the tower's missed-tick watchdog
// detects each outage, replans the catalog onto the surviving channels,
// hot-swaps the survivor program at a cycle boundary, and replans back
// to full width on recovery — while every client survives the dead air
// through the failover protocol. The cross-check runs against the
// analytic outage twin, Failovers included.
//
// With -batch k1,k2,... every client retrieves that whole key set in one
// session: the conflict-aware planner computes a tune schedule across
// channels (exact DP for small batches, greedy above), the analytic twin
// predicts the metrics — conflicts and extra cycles included — and the
// client executes the plan over the socket with ReadBatch. Live and
// analytic metrics must match byte for byte, lossy medium or not.
//
// With -kill SLOT the station is crash-tested for real: the tower
// checkpoints its epoch state at every cycle boundary, the process
// tears it down — sockets and all — the moment the broadcast clock
// reaches SLOT, and a fresh tower warm-starts from the checkpoint after
// -restart-after slots of downtime, rebinding the same port. Every
// client rides through the crash with the reconnect protocol (seeded
// exponential backoff against the same port) and is cross-checked
// against the analytic restart twin, Reconnects included.
//
// With -obs addr the process serves its observability endpoint — JSON
// metrics at /metrics, recent trace events at /trace, and net/http/pprof
// under /debug/pprof/ — and dumps a final text snapshot of every metric
// to stderr on shutdown. Bind loopback: the endpoint is unauthenticated.
// Observation never changes behavior; the metrics cross-checked against
// the simulator stay byte-identical with or without -obs.
//
// Example:
//
//	bcast-gen -type catalog -n 12 | bcast-live -k 2 -clients 8
//	bcast-gen -type catalog -n 12 | bcast-live -clients 4 -drop 0.2 -corrupt 0.1
//	bcast-gen -type catalog -n 12 | bcast-live -swap 9 -obs 127.0.0.1:0
//	bcast-gen -type catalog -n 12 | bcast-live -k 2 -outage 1:10:40 -clients 6
//	bcast-gen -type catalog -n 12 | bcast-live -k 2 -batch 1,4,7,9 -clients 4
//	bcast-gen -type catalog -n 12 | bcast-live -k 2 -kill 12 -restart-after 5
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/alphatree"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/netcast"
	"repro/internal/obs"
	"repro/internal/retrieval"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// liveOpts carries the command-line configuration into run.
type liveOpts struct {
	k       int
	clients int
	seed    int64
	// drop/corrupt/stall are the per-slot fault probabilities of the
	// injected lossy-channel model (all zero = perfect medium).
	drop, corrupt, stall float64
	// retries bounds redundant wake-ups per lookup (0 = the default).
	retries int
	// swap, when positive, stages a re-optimized epoch-2 program (same
	// keys, rotated weights) once the broadcast clock reaches that slot;
	// the tower hot-swaps it at the next cycle boundary and every client
	// is cross-checked against the adaptive analytic simulator instead,
	// including its Restarts count.
	swap int
	// outages is the channel-outage schedule (empty = no outages);
	// watchdog the tower's missed-tick threshold (0 = default, negative
	// disables replanning); deadAir the client's consecutive-unusable-read
	// failover threshold (0 = default, negative disables failover).
	outages           fault.Outages
	watchdog, deadAir int
	// batchKeys, when non-empty, switches every client to one planned
	// multi-key retrieval of exactly these keys instead of a single
	// random lookup.
	batchKeys []int64
	// kill, when positive, crash-tests the station: the tower is torn
	// down when the broadcast clock reaches that slot and warm-started
	// from its checkpoint after restartAfter slots of downtime, while
	// every client reconnects through the seeded backoff.
	kill, restartAfter int
	// obs, when non-nil, receives server and client metrics and trace
	// events; main wires it to the -obs HTTP endpoint.
	obs *obs.Registry
}

func main() {
	var (
		in  = flag.String("tree", "", "tree JSON file (default stdin); must be keyed (bcast-gen -type catalog)")
		opt liveOpts
	)
	flag.IntVar(&opt.k, "k", 2, "number of broadcast channels")
	flag.IntVar(&opt.clients, "clients", 5, "concurrent lookup clients")
	flag.Int64Var(&opt.seed, "seed", 1, "seed for client arrivals, keys and fault outcomes")
	flag.Float64Var(&opt.drop, "drop", 0, "per-slot frame loss probability")
	flag.Float64Var(&opt.corrupt, "corrupt", 0, "per-slot bit-corruption probability")
	flag.Float64Var(&opt.stall, "stall", 0, "per-slot delivery stall probability")
	flag.IntVar(&opt.retries, "retries", 0, "retry budget per lookup (0 = default)")
	flag.IntVar(&opt.swap, "swap", 0, "stage a rebuilt epoch-2 program at this slot and hot-swap it on air (0 = static broadcast)")
	outageSpec := flag.String("outage", "", "channel-outage windows CH:START:END, comma-separated (e.g. 1:10:40,2:60:80)")
	batchSpec := flag.String("batch", "", "retrieve these comma-separated keys as one planned batch per client (e.g. 1,4,7)")
	flag.IntVar(&opt.kill, "kill", 0, "crash the station when the broadcast clock reaches this slot and warm-restart it from its checkpoint (0 = no crash)")
	flag.IntVar(&opt.restartAfter, "restart-after", 5, "downtime in slots between the -kill crash and the warm restart")
	flag.IntVar(&opt.watchdog, "watchdog", 0, "missed-tick threshold before the tower replans (0 = default, negative = no replanning)")
	flag.IntVar(&opt.deadAir, "deadair", 0, "consecutive unusable reads before a client fails over (0 = default, negative = no failover)")
	obsAddr := flag.String("obs", "", "serve /metrics, /trace and /debug/pprof on this address (bind loopback, e.g. 127.0.0.1:0)")
	flag.Parse()
	var err error
	if opt.outages, err = parseOutages(*outageSpec); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-live:", err)
		os.Exit(1)
	}
	if opt.batchKeys, err = parseBatchKeys(*batchSpec); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-live:", err)
		os.Exit(1)
	}
	var obsSrv *obs.Server
	if *obsAddr != "" {
		opt.obs = obs.NewWithOptions(obs.Options{Clock: func() int64 { return time.Now().UnixNano() }})
		if obsSrv, err = obs.Serve(*obsAddr, opt.obs); err != nil {
			fmt.Fprintln(os.Stderr, "bcast-live:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obs: serving http://%s/metrics\n", obsSrv.Addr())
	}
	err = run(*in, opt, os.Stdout)
	if obsSrv != nil {
		obsSrv.Close()
		fmt.Fprintln(os.Stderr, "\nobs: final metrics snapshot")
		opt.obs.WriteText(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcast-live:", err)
		os.Exit(1)
	}
}

func run(in string, opt liveOpts, w io.Writer) error {
	var data []byte
	var err error
	if in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}
	t, err := tree.ParseJSON(data)
	if err != nil {
		return err
	}
	if !t.Keyed() {
		return fmt.Errorf("tree must be keyed for live lookups (use bcast-gen -type catalog)")
	}
	sol, err := core.Solve(t, core.Config{Channels: opt.k})
	if err != nil {
		return err
	}
	// Root copies make the first channel's idle slots useful, give the
	// hot-swap demo the boundary-straddling descents that restart, and
	// give failed-over clients a root to re-tune to during an outage.
	prog, err := sim.Compile(sol.Alloc, sim.Options{FillWithRootCopies: opt.swap > 0 || opt.outages.Enabled() || opt.kill > 0})
	if err != nil {
		return err
	}
	demos := 0
	for _, on := range []bool{len(opt.batchKeys) > 0, opt.outages.Enabled(), opt.swap > 0, opt.kill > 0} {
		if on {
			demos++
		}
	}
	if demos > 1 {
		return fmt.Errorf("-batch, -swap, -outage and -kill are separate demos; pick one")
	}
	if len(opt.batchKeys) > 0 {
		return runBatch(t, prog, opt, w)
	}
	if opt.outages.Enabled() {
		return runOutage(t, prog, opt, w)
	}
	if opt.swap > 0 {
		return runAdaptive(t, prog, opt, w)
	}
	if opt.kill > 0 {
		return runRestart(t, prog, opt, w)
	}

	model := fault.Model{Seed: opt.seed, Drop: opt.drop, Corrupt: opt.corrupt, Stall: opt.stall}
	fc := sim.FaultConfig{Model: model, MaxRetries: opt.retries}
	server, err := netcast.NewServerOpts(prog, netcast.ServerOptions{
		Faults:   model,
		StallFor: time.Millisecond,
		Obs:      opt.obs,
	})
	if err != nil {
		return err
	}
	defer server.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server.Serve(ln)
	fmt.Fprintf(w, "broadcasting %d nodes over %d channels at %s (cycle %d slots)\n",
		t.NumNodes(), opt.k, ln.Addr(), prog.CycleLen())
	if model.Enabled() {
		fmt.Fprintf(w, "lossy medium: drop %.2f, corrupt %.2f, stall %.2f (seed %d)\n",
			opt.drop, opt.corrupt, opt.stall, opt.seed)
	}
	fmt.Fprintln(w)

	power := sim.Power{Active: 1, Doze: 0.05}
	rng := stats.NewRNG(opt.seed)
	dataIDs := t.DataIDs()

	type outcome struct {
		idx     int
		arrival int
		key     int64
		found   bool
		m       sim.Metrics
		want    sim.Metrics
		err     error
		wantErr error
	}
	done := make(chan outcome, opt.clients)
	for i := 0; i < opt.clients; i++ {
		target := dataIDs[rng.Intn(len(dataIDs))]
		key, _ := t.Key(target)
		arrival := rng.Intn(2 * prog.CycleLen())
		want, wantErr := prog.QueryFaulty(arrival, target, power, fc)
		if wantErr != nil && !errors.Is(wantErr, fault.ErrRetryBudget) {
			return wantErr
		}
		go func(idx, arrival int, key int64, want sim.Metrics, wantErr error) {
			c, err := netcast.Dial(ln.Addr().String())
			if err != nil {
				done <- outcome{idx: idx, err: err}
				return
			}
			defer c.Close()
			c.MaxRetries = opt.retries
			c.Instrument(opt.obs)
			found, _, m, err := c.Lookup(arrival, key, power)
			done <- outcome{idx, arrival, key, found, m, want, err, wantErr}
		}(i, arrival, key, want, wantErr)
	}

	// Drive the broadcast once every client is connected, so nobody's
	// arrival slot can pass before they are registered. The tick budget
	// covers the worst case of every client exhausting its retry budget.
	go func() {
		server.AwaitConns(opt.clients)
		budget := opt.retries
		if budget <= 0 {
			budget = sim.DefaultMaxRetries
		}
		server.Run((2*(opt.clients+2) + budget + 8) * prog.CycleLen())
	}()

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "client\tarrival\tkey\tfound\taccess\ttuning\tretries\tenergy\tmatches simulator")
	failures := 0
	for i := 0; i < opt.clients; i++ {
		o := <-done
		if o.err != nil {
			// A budget exhaustion the analytic simulator also predicts is
			// an agreement, not a failure.
			if errors.Is(o.err, fault.ErrRetryBudget) && errors.Is(o.wantErr, fault.ErrRetryBudget) {
				fmt.Fprintf(tw, "%d\t%d\t%d\t-\t-\t-\t-\t-\tbudget exhausted (as predicted)\n",
					o.idx, o.arrival, o.key)
				continue
			}
			return fmt.Errorf("client %d: %w", o.idx, o.err)
		}
		if o.wantErr != nil {
			return fmt.Errorf("client %d: simulator predicted %v but the socket lookup succeeded", o.idx, o.wantErr)
		}
		match := o.m == o.want
		if !match || !o.found {
			failures++
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%d\t%d\t%d\t%.2f\t%v\n",
			o.idx, o.arrival, o.key, o.found, o.m.AccessTime, o.m.TuningTime, o.m.Retries, o.m.Energy, match)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d clients diverged from the simulator", failures, opt.clients)
	}
	fmt.Fprintf(w, "\nall %d live lookups matched the analytic simulator exactly\n", opt.clients)
	return nil
}

// parseBatchKeys parses the -batch flag: comma-separated catalog keys.
func parseBatchKeys(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var keys []int64
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -batch key %q: %v", part, err)
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// runBatch serves the broadcast while every client retrieves the whole
// -batch key set in one planned session: the conflict-aware planner
// schedules the reads across channels for each client's arrival, the
// analytic twin predicts the session's metrics, and the client executes
// the identical plan over the socket. Plan-level conflict accounting
// (targets spilled to later cycles) must agree on both paths.
func runBatch(t *tree.Tree, prog *sim.Program, opt liveOpts, w io.Writer) error {
	byKey := make(map[int64]tree.ID, len(t.DataIDs()))
	for _, id := range t.DataIDs() {
		key, _ := t.Key(id)
		byKey[key] = id
	}
	targets := make([]tree.ID, len(opt.batchKeys))
	for i, key := range opt.batchKeys {
		id, ok := byKey[key]
		if !ok {
			return fmt.Errorf("-batch key %d is not in the catalog", key)
		}
		targets[i] = id
	}

	model := fault.Model{Seed: opt.seed, Drop: opt.drop, Corrupt: opt.corrupt, Stall: opt.stall}
	fc := sim.FaultConfig{Model: model, MaxRetries: opt.retries}
	cfg := retrieval.Config{Obs: opt.obs}
	if opt.obs != nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	planner := retrieval.New(cfg)
	server, err := netcast.NewServerOpts(prog, netcast.ServerOptions{
		Faults:   model,
		StallFor: time.Millisecond,
		Obs:      opt.obs,
	})
	if err != nil {
		return err
	}
	defer server.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server.Serve(ln)
	fmt.Fprintf(w, "broadcasting %d nodes over %d channels at %s (cycle %d slots)\n",
		t.NumNodes(), opt.k, ln.Addr(), prog.CycleLen())
	fmt.Fprintf(w, "batch retrieval: %d keys per client %v\n", len(targets), opt.batchKeys)
	if model.Enabled() {
		fmt.Fprintf(w, "lossy medium: drop %.2f, corrupt %.2f, stall %.2f (seed %d)\n",
			opt.drop, opt.corrupt, opt.stall, opt.seed)
	}
	fmt.Fprintln(w)

	power := sim.Power{Active: 1, Doze: 0.05}
	rng := stats.NewRNG(opt.seed)

	type outcome struct {
		idx     int
		arrival int
		m       sim.Metrics
		want    sim.Metrics
		err     error
		wantErr error
	}
	done := make(chan outcome, opt.clients)
	maxNeed := 0
	for i := 0; i < opt.clients; i++ {
		arrival := rng.Intn(2 * prog.CycleLen())
		plan, err := planner.PlanBatch(prog, arrival, targets)
		if err != nil {
			return err
		}
		if need := plan.Arrival + plan.Makespan(); need > maxNeed {
			maxNeed = need
		}
		want, wantErr := prog.QueryBatch(plan, power, fc)
		if wantErr != nil && !errors.Is(wantErr, fault.ErrRetryBudget) {
			return wantErr
		}
		go func(idx, arrival int, plan *sim.BatchPlan, want sim.Metrics, wantErr error) {
			c, err := netcast.Dial(ln.Addr().String())
			if err != nil {
				done <- outcome{idx: idx, err: err}
				return
			}
			defer c.Close()
			c.MaxRetries = opt.retries
			c.Instrument(opt.obs)
			m, err := c.ReadBatch(plan, power)
			done <- outcome{idx, arrival, m, want, err, wantErr}
		}(i, arrival, plan, want, wantErr)
	}

	go func() {
		server.AwaitConns(opt.clients)
		budget := opt.retries
		if budget <= 0 {
			budget = sim.DefaultMaxRetries
		}
		server.Run(maxNeed + (2*(opt.clients+2)+budget+8)*prog.CycleLen())
	}()

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "client\tarrival\tkeys\taccess\tprobe\ttuning\tretries\tconflicts\textra cycles\tenergy\tmatches simulator")
	failures, conflicts := 0, 0
	for i := 0; i < opt.clients; i++ {
		o := <-done
		if o.err != nil {
			if errors.Is(o.err, fault.ErrRetryBudget) && errors.Is(o.wantErr, fault.ErrRetryBudget) {
				fmt.Fprintf(tw, "%d\t%d\t%d\t-\t-\t-\t-\t-\t-\t-\tbudget exhausted (as predicted)\n",
					o.idx, o.arrival, len(targets))
				continue
			}
			return fmt.Errorf("client %d: %w", o.idx, o.err)
		}
		if o.wantErr != nil {
			return fmt.Errorf("client %d: simulator predicted %v but the socket batch succeeded", o.idx, o.wantErr)
		}
		match := o.m == o.want
		if !match {
			failures++
		}
		conflicts += o.m.Conflicts
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\t%v\n",
			o.idx, o.arrival, len(targets), o.m.AccessTime, o.m.ProbeWait, o.m.TuningTime,
			o.m.Retries, o.m.Conflicts, o.m.ExtraCycles, o.m.Energy, match)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d clients diverged from the batch simulator", failures, opt.clients)
	}
	fmt.Fprintf(w, "\n%d conflicts rescheduled; all %d live batch retrievals matched the analytic simulator exactly\n",
		conflicts, opt.clients)
	return nil
}

// rebuildRotated re-optimizes the same catalog under rotated demand: each
// key inherits its successor's weight, the shifting-popularity workload a
// real tower re-plans for. Keys and channel count are unchanged, so the
// epoch-2 tree is a legal hot-swap target.
func rebuildRotated(t *tree.Tree, channels int) (*sim.Program, error) {
	ids := t.DataIDs()
	items := make([]alphatree.Item, len(ids))
	for i, id := range ids {
		key, _ := t.Key(id)
		items[i] = alphatree.Item{Label: t.Label(id), Key: key, Weight: t.Weight(id)}
	}
	weights := make([]float64, len(items))
	for i := range items {
		weights[i] = items[(i+1)%len(items)].Weight
	}
	for i := range items {
		items[i].Weight = weights[i]
	}
	next, err := alphatree.HuTucker(items)
	if err != nil {
		return nil, err
	}
	sol, err := core.Solve(next, core.Config{Channels: channels})
	if err != nil {
		return nil, err
	}
	return sim.Compile(sol.Alloc, sim.Options{FillWithRootCopies: true})
}

// runAdaptive serves the epoch-versioned broadcast: prog airs as epoch 1,
// a rebuilt program is staged once the clock reaches opt.swap, the tower
// swaps it in at the next cycle boundary, and every client — whose
// descent may straddle the swap and restart — is cross-checked against
// the adaptive analytic simulator, Restarts included.
func runAdaptive(t *tree.Tree, prog *sim.Program, opt liveOpts, w io.Writer) error {
	prog2, err := rebuildRotated(t, opt.k)
	if err != nil {
		return err
	}
	tl, err := sim.NewTimeline(prog, 1)
	if err != nil {
		return err
	}
	swapSlot, err := tl.Append(prog2, 2, opt.swap)
	if err != nil {
		return err
	}

	model := fault.Model{Seed: opt.seed, Drop: opt.drop, Corrupt: opt.corrupt, Stall: opt.stall}
	fc := sim.FaultConfig{Model: model, MaxRetries: opt.retries}
	reg, err := epoch.NewRegistry(prog)
	if err != nil {
		return err
	}
	server, err := netcast.NewAdaptiveServer(reg, netcast.ServerOptions{
		Faults:   model,
		StallFor: time.Millisecond,
		Obs:      opt.obs,
	})
	if err != nil {
		return err
	}
	defer server.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server.Serve(ln)
	fmt.Fprintf(w, "broadcasting %d nodes over %d channels at %s (epoch 1, cycle %d slots)\n",
		t.NumNodes(), opt.k, ln.Addr(), prog.CycleLen())
	fmt.Fprintf(w, "hot swap: epoch 2 (cycle %d slots) staged at slot %d, lands at cycle boundary %d\n",
		prog2.CycleLen(), opt.swap, swapSlot)
	if model.Enabled() {
		fmt.Fprintf(w, "lossy medium: drop %.2f, corrupt %.2f, stall %.2f (seed %d)\n",
			opt.drop, opt.corrupt, opt.stall, opt.seed)
	}
	fmt.Fprintln(w)

	power := sim.Power{Active: 1, Doze: 0.05}
	rng := stats.NewRNG(opt.seed)
	dataIDs := t.DataIDs()

	type outcome struct {
		idx     int
		arrival int
		key     int64
		found   bool
		m       sim.Metrics
		want    sim.Metrics
		err     error
		wantErr error
	}
	done := make(chan outcome, opt.clients)
	for i := 0; i < opt.clients; i++ {
		key, _ := t.Key(dataIDs[rng.Intn(len(dataIDs))])
		// Arrivals cluster around the swap so descents straddle it.
		arrival := rng.Intn(swapSlot + 2*prog2.CycleLen())
		want, _, wantErr := tl.QuerySwitch(arrival, key, power, fc)
		if wantErr != nil && !errors.Is(wantErr, fault.ErrRetryBudget) {
			return wantErr
		}
		go func(idx, arrival int, key int64, want sim.Metrics, wantErr error) {
			c, err := netcast.Dial(ln.Addr().String())
			if err != nil {
				done <- outcome{idx: idx, err: err}
				return
			}
			defer c.Close()
			c.MaxRetries = opt.retries
			c.Instrument(opt.obs)
			found, _, m, err := c.Lookup(arrival, key, power)
			done <- outcome{idx, arrival, key, found, m, want, err, wantErr}
		}(i, arrival, key, want, wantErr)
	}

	go func() {
		server.AwaitConns(opt.clients)
		server.Run(opt.swap)
		if _, err := reg.Stage(prog2); err != nil {
			return
		}
		budget := opt.retries
		if budget <= 0 {
			budget = sim.DefaultMaxRetries
		}
		server.Run(swapSlot - opt.swap + (2*(opt.clients+2)+budget+8)*(prog.CycleLen()+prog2.CycleLen()))
	}()

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "client\tarrival\tkey\tfound\taccess\ttuning\tretries\trestarts\tenergy\tmatches simulator")
	failures, restarts := 0, 0
	for i := 0; i < opt.clients; i++ {
		o := <-done
		if o.err != nil {
			if errors.Is(o.err, fault.ErrRetryBudget) && errors.Is(o.wantErr, fault.ErrRetryBudget) {
				fmt.Fprintf(tw, "%d\t%d\t%d\t-\t-\t-\t-\t-\t-\tbudget exhausted (as predicted)\n",
					o.idx, o.arrival, o.key)
				continue
			}
			return fmt.Errorf("client %d: %w", o.idx, o.err)
		}
		if o.wantErr != nil {
			return fmt.Errorf("client %d: simulator predicted %v but the socket lookup succeeded", o.idx, o.wantErr)
		}
		match := o.m == o.want
		if !match {
			failures++
		}
		restarts += o.m.Restarts
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%d\t%d\t%d\t%d\t%.2f\t%v\n",
			o.idx, o.arrival, o.key, o.found, o.m.AccessTime, o.m.TuningTime, o.m.Retries, o.m.Restarts, o.m.Energy, match)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d clients diverged from the adaptive simulator", failures, opt.clients)
	}
	fmt.Fprintf(w, "\nswaps landed: %d; %d descent restarts; all %d live lookups matched the adaptive simulator exactly\n",
		server.Swaps(), restarts, opt.clients)
	return nil
}

// runRestart crash-tests the station: the tower checkpoints at every
// cycle boundary, dies — listener, sockets and all — the moment its
// clock reaches opt.kill, and a fresh process warm-starts from the
// checkpoint on the same port once the downtime window has passed.
// Clients that were mid-session reconnect under the seeded backoff and
// finish against the restored broadcast; every session is cross-checked
// against the analytic restart twin, Reconnects included.
func runRestart(t *tree.Tree, prog *sim.Program, opt liveOpts, w io.Writer) error {
	dir, err := os.MkdirTemp("", "bcast-live-ckpt")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sopts := netcast.ServerOptions{
		Faults:         fault.Model{Seed: opt.seed, Drop: opt.drop, Corrupt: opt.corrupt, Stall: opt.stall},
		StallFor:       time.Millisecond,
		Obs:            opt.obs,
		CheckpointPath: dir + "/station.ckpt",
		Resume:         true,
	}
	down := fault.Downtime{StartSlot: opt.kill, EndSlot: opt.kill + opt.restartAfter}
	bo := fault.Backoff{Seed: opt.seed}
	rc := sim.RestartConfig{
		Model:      sopts.Faults,
		Downtimes:  fault.Downtimes{down},
		Backoff:    bo,
		MaxRetries: opt.retries,
		DeadAir:    -1,
	}

	reg, err := epoch.NewRegistry(prog)
	if err != nil {
		return err
	}
	server, err := netcast.NewAdaptiveServer(reg, sopts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server.Serve(ln)
	addr := ln.Addr().String()

	// station guards the kill/warm-restart transition: a client redial
	// observed after the crash blocks here until the new tower is
	// accepting, and is refused while the downtime window holds.
	var station struct {
		mu     sync.Mutex
		cur    *netcast.Server
		killed bool
	}
	station.cur = server
	defer func() {
		station.mu.Lock()
		cur := station.cur
		station.mu.Unlock()
		if cur != nil {
			cur.Close()
		}
	}()
	redial := func(slot int) (net.Conn, error) {
		station.mu.Lock()
		defer station.mu.Unlock()
		if station.cur == nil || (station.killed && slot < down.EndSlot) {
			return nil, fmt.Errorf("station down at slot %d", slot)
		}
		return net.Dial("tcp", addr)
	}

	fmt.Fprintf(w, "broadcasting %d nodes over %d channels at %s (cycle %d slots)\n",
		t.NumNodes(), opt.k, addr, prog.CycleLen())
	fmt.Fprintf(w, "crash test: station dies at slot %d, warm-starts from its checkpoint at slot %d\n",
		down.StartSlot, down.EndSlot)
	if sopts.Faults.Enabled() {
		fmt.Fprintf(w, "lossy medium: drop %.2f, corrupt %.2f, stall %.2f (seed %d)\n",
			opt.drop, opt.corrupt, opt.stall, opt.seed)
	}
	fmt.Fprintln(w)

	power := sim.Power{Active: 1, Doze: 0.05}
	rng := stats.NewRNG(opt.seed)
	dataIDs := t.DataIDs()

	type outcome struct {
		idx     int
		arrival int
		key     int64
		found   bool
		m       sim.Metrics
		want    sim.Metrics
		err     error
		wantErr error
	}
	done := make(chan outcome, opt.clients)
	for i := 0; i < opt.clients; i++ {
		key, _ := t.Key(dataIDs[rng.Intn(len(dataIDs))])
		// Arrivals spread up to the crash so sessions straddle it.
		arrival := rng.Intn(opt.kill + prog.CycleLen())
		want, _, wantErr := prog.QueryRestart(arrival, key, power, rc)
		if wantErr != nil && !errors.Is(wantErr, fault.ErrRetryBudget) {
			return wantErr
		}
		go func(idx, arrival int, key int64, want sim.Metrics, wantErr error) {
			c, err := netcast.Dial(addr)
			if err != nil {
				done <- outcome{idx: idx, err: err}
				return
			}
			defer c.Close()
			c.MaxRetries = opt.retries
			c.Backoff = bo
			c.Redial = redial
			c.Instrument(opt.obs)
			found, _, m, err := c.Lookup(arrival, key, power)
			done <- outcome{idx, arrival, key, found, m, want, err, wantErr}
		}(i, arrival, key, want, wantErr)
	}

	// Drive the broadcast by hand: tick only while a session is in
	// flight (a free-running clock would outpace reconnecting clients),
	// and fire the crash the moment the clock reaches the kill slot.
	stop := make(chan struct{})
	driveDone := make(chan error, 1)
	go func() {
		server.AwaitConns(opt.clients)
		for {
			select {
			case <-stop:
				driveDone <- nil
				return
			default:
			}
			station.mu.Lock()
			cur := station.cur
			station.mu.Unlock()
			if !station.killed && cur.Now() >= down.StartSlot {
				station.mu.Lock()
				cur.Close()
				reg2, err := epoch.NewRegistry(prog)
				if err == nil {
					station.cur, err = netcast.NewAdaptiveServer(reg2, sopts)
				}
				if err != nil {
					station.cur = nil
					station.mu.Unlock()
					driveDone <- err
					return
				}
				ln2, err := net.Listen("tcp", addr)
				if err != nil {
					station.mu.Unlock()
					driveDone <- err
					return
				}
				station.cur.Serve(ln2)
				station.killed = true
				warm := station.cur.Warm()
				clock := station.cur.Now()
				station.mu.Unlock()
				fmt.Fprintf(w, "station killed at slot %d; warm=%v, resumed at boundary %d\n\n",
					down.StartSlot, warm, clock)
				continue
			}
			if cur.Conns() > 0 {
				if err := cur.Tick(); err != nil {
					driveDone <- err
					return
				}
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "client\tarrival\tkey\tfound\taccess\ttuning\tretries\treconnects\tenergy\tmatches simulator")
	failures, reconnects := 0, 0
	for i := 0; i < opt.clients; i++ {
		o := <-done
		if o.err != nil {
			if errors.Is(o.err, fault.ErrRetryBudget) && errors.Is(o.wantErr, fault.ErrRetryBudget) {
				fmt.Fprintf(tw, "%d\t%d\t%d\t-\t-\t-\t-\t-\t-\tbudget exhausted (as predicted)\n",
					o.idx, o.arrival, o.key)
				continue
			}
			close(stop)
			return fmt.Errorf("client %d: %w", o.idx, o.err)
		}
		if o.wantErr != nil {
			close(stop)
			return fmt.Errorf("client %d: simulator predicted %v but the socket lookup succeeded", o.idx, o.wantErr)
		}
		match := o.m == o.want
		if !match {
			failures++
		}
		reconnects += o.m.Reconnects
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%d\t%d\t%d\t%d\t%.2f\t%v\n",
			o.idx, o.arrival, o.key, o.found, o.m.AccessTime, o.m.TuningTime, o.m.Retries, o.m.Reconnects, o.m.Energy, match)
	}
	close(stop)
	if err := <-driveDone; err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d clients diverged from the restart simulator", failures, opt.clients)
	}
	fmt.Fprintf(w, "\n%d client reconnects; all %d live lookups matched the restart simulator exactly\n",
		reconnects, opt.clients)
	return nil
}

// parseOutages parses the -outage flag: comma-separated CH:START:END
// windows of absolute slots.
func parseOutages(s string) (fault.Outages, error) {
	if s == "" {
		return nil, nil
	}
	var out fault.Outages
	for _, part := range strings.Split(s, ",") {
		var o fault.Outage
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d:%d:%d", &o.Channel, &o.StartSlot, &o.EndSlot); err != nil {
			return nil, fmt.Errorf("bad outage %q (want CH:START:END): %v", part, err)
		}
		out = append(out, o)
	}
	return out, out.Validate()
}

// runOutage serves the broadcast while channels suffer the scheduled
// outages: the tower's watchdog detects each window, replans the catalog
// onto the survivors (staged through the epoch registry and hot-swapped
// at a cycle boundary), and replans back to full width on recovery.
// Clients arm the failover protocol and every session is cross-checked
// against the analytic outage twin — the timeline carrying the same
// replans at the same detection slots — Failovers included.
func runOutage(t *tree.Tree, prog *sim.Program, opt liveOpts, w io.Writer) error {
	wdog := opt.watchdog
	if wdog == 0 {
		wdog = netcast.DefaultWatchdog
	}
	deadAir := opt.deadAir
	if deadAir == 0 {
		deadAir = sim.DefaultDeadAir
	}
	budget := opt.retries
	if budget <= 0 {
		budget = sim.DefaultMaxRetries
	}
	L := prog.CycleLen()
	maxEnd := 0
	for _, o := range opt.outages {
		if o.EndSlot > maxEnd {
			maxEnd = o.EndSlot
		}
	}
	// The tick budget covers every client exhausting its retry budget
	// past the last window; detections are replayed over the same span so
	// tower and twin see the identical schedule.
	runSlots := maxEnd + (2*(opt.clients+2)+budget+8)*L
	events := opt.outages.Detections(opt.k, wdog, runSlots)
	progs, err := experiment.ReplanPrograms(prog, events, opt.k)
	if err != nil {
		return err
	}
	tl, replans, err := experiment.ReplanTimeline(prog, events, progs)
	if err != nil {
		return err
	}

	model := fault.Model{Seed: opt.seed, Drop: opt.drop, Corrupt: opt.corrupt, Stall: opt.stall}
	oc := sim.OutageConfig{Model: model, Outages: opt.outages, MaxRetries: opt.retries, DeadAir: deadAir}
	reg, err := epoch.NewRegistry(prog)
	if err != nil {
		return err
	}
	idx := 0
	server, err := netcast.NewAdaptiveServer(reg, netcast.ServerOptions{
		Faults:   model,
		Outages:  opt.outages,
		Watchdog: wdog,
		StallFor: time.Millisecond,
		Obs:      opt.obs,
		OnLiveChange: func(live []int, slot int) {
			if idx < len(progs) {
				reg.Stage(progs[idx])
				idx++
			}
		},
	})
	if err != nil {
		return err
	}
	defer server.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	server.Serve(ln)
	fmt.Fprintf(w, "broadcasting %d nodes over %d channels at %s (cycle %d slots)\n",
		t.NumNodes(), opt.k, ln.Addr(), L)
	fmt.Fprintf(w, "outages: %v; watchdog %d, dead air %d, %d replans will air\n",
		opt.outages, wdog, deadAir, replans)
	if model.Enabled() {
		fmt.Fprintf(w, "lossy medium: drop %.2f, corrupt %.2f, stall %.2f (seed %d)\n",
			opt.drop, opt.corrupt, opt.stall, opt.seed)
	}
	fmt.Fprintln(w)

	power := sim.Power{Active: 1, Doze: 0.05}
	rng := stats.NewRNG(opt.seed)
	dataIDs := t.DataIDs()

	type outcome struct {
		idx     int
		arrival int
		key     int64
		found   bool
		m       sim.Metrics
		want    sim.Metrics
		err     error
		wantErr error
	}
	done := make(chan outcome, opt.clients)
	for i := 0; i < opt.clients; i++ {
		key, _ := t.Key(dataIDs[rng.Intn(len(dataIDs))])
		// Arrivals spread across the outage windows so sessions hit dead
		// air before, during, and after the replans.
		arrival := rng.Intn(maxEnd + 2*L)
		want, _, wantErr := tl.QueryOutage(arrival, key, power, oc)
		if wantErr != nil && !errors.Is(wantErr, fault.ErrRetryBudget) {
			return wantErr
		}
		go func(idx, arrival int, key int64, want sim.Metrics, wantErr error) {
			c, err := netcast.Dial(ln.Addr().String())
			if err != nil {
				done <- outcome{idx: idx, err: err}
				return
			}
			defer c.Close()
			c.MaxRetries = opt.retries
			c.DeadAir = deadAir
			c.Channels = opt.k
			c.Instrument(opt.obs)
			found, _, m, err := c.Lookup(arrival, key, power)
			done <- outcome{idx, arrival, key, found, m, want, err, wantErr}
		}(i, arrival, key, want, wantErr)
	}

	go func() {
		server.AwaitConns(opt.clients)
		server.Run(runSlots)
	}()

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "client\tarrival\tkey\tfound\taccess\ttuning\tretries\tfailovers\tenergy\tmatches simulator")
	failures, failovers := 0, 0
	for i := 0; i < opt.clients; i++ {
		o := <-done
		if o.err != nil {
			if errors.Is(o.err, fault.ErrRetryBudget) && errors.Is(o.wantErr, fault.ErrRetryBudget) {
				fmt.Fprintf(tw, "%d\t%d\t%d\t-\t-\t-\t-\t-\t-\tbudget exhausted (as predicted)\n",
					o.idx, o.arrival, o.key)
				continue
			}
			return fmt.Errorf("client %d: %w", o.idx, o.err)
		}
		if o.wantErr != nil {
			return fmt.Errorf("client %d: simulator predicted %v but the socket lookup succeeded", o.idx, o.wantErr)
		}
		match := o.m == o.want
		if !match {
			failures++
		}
		failovers += o.m.Failovers
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%d\t%d\t%d\t%d\t%.2f\t%v\n",
			o.idx, o.arrival, o.key, o.found, o.m.AccessTime, o.m.TuningTime, o.m.Retries, o.m.Failovers, o.m.Energy, match)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d clients diverged from the outage simulator", failures, opt.clients)
	}
	fmt.Fprintf(w, "\nswaps landed: %d; channels live: %v; %d channel failovers; all %d live lookups matched the outage simulator exactly\n",
		server.Swaps(), server.ChannelsLive(), failovers, opt.clients)
	return nil
}
