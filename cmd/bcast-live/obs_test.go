package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestLiveObsMetricsMove is the -obs integration pin for the tower: a
// lossy hot-swap run with an instrumented registry must move the server
// tick/swap/request counters and the client lookup/retry/restart
// counters, leave swap and retry trace events behind, and — the
// determinism half — report byte-identical simulator cross-checks, since
// run() only succeeds when every client matches the analytic twin.
func TestLiveObsMetricsMove(t *testing.T) {
	r := obs.New()
	var sb strings.Builder
	opt := liveOpts{k: 2, clients: 6, seed: 5, swap: 9, drop: 0.1, retries: 64, obs: r}
	if err := run(catalogFile(t, 10), opt, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "matched the adaptive simulator exactly") {
		t.Fatalf("cross-check did not complete:\n%s", sb.String())
	}

	s := r.Snapshot()
	for _, c := range []string{
		"netcast_ticks_total", "netcast_frames_total", "netcast_requests_total",
		"netcast_swaps_total", "netcast_conns_attached_total",
		"client_lookups_total", "client_reads_total", "client_retries_total",
	} {
		if s.Counters[c] == 0 {
			t.Errorf("counter %s did not move; counters: %+v", c, s.Counters)
		}
	}
	if s.Counters["netcast_swaps_total"] != 1 {
		t.Errorf("netcast_swaps_total = %d, want 1", s.Counters["netcast_swaps_total"])
	}
	if s.Counters["client_lookups_total"] != 6 {
		t.Errorf("client_lookups_total = %d, want 6", s.Counters["client_lookups_total"])
	}
	// The span gauge reflects the compacted history, not the swap count.
	if g := s.Gauges["netcast_spans"]; g < 1 || g > 3 {
		t.Errorf("netcast_spans = %d, want a small compacted history", g)
	}
	kinds := map[string]bool{}
	for _, e := range r.Events(0) {
		kinds[e.Kind] = true
	}
	for _, k := range []string{"tune", "swap", "retry"} {
		if !kinds[k] {
			t.Errorf("trace carries no %q events", k)
		}
	}
}
