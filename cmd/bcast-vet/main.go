// Command bcast-vet runs the repo's custom static analyzers — the
// determinism, pooling, goroutine-lifecycle, error-sentinel,
// lock-discipline, obs-registry, and budget-flow invariants documented
// in DESIGN.md §9 — over module packages.
//
// Usage:
//
//	bcast-vet [-list] [-json file] [-timebudget d] [pattern ...]
//
// Patterns are module-relative: "./..." (the default), "./internal/sim",
// or "internal/topo/...". Diagnostics print to stdout one per line as
// file:line:col: message [bcast-analyzer]; the exit status is 0 when the
// tree is clean, 1 when any analyzer fired (or overran -timebudget),
// and 2 when loading or type-checking failed.
//
// -json writes a machine-readable report — analyzer roster, every
// diagnostic, and per-(analyzer, package) wall times — to the named
// file ("-" for stdout), so CI can archive the run next to the bench
// artifacts. -timebudget fails the run when any single analyzer spends
// longer than the budget on one package: an accidentally super-linear
// dataflow pass becomes a red check instead of a slow one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analysis"
)

// report is the -json payload. Field names are part of the CI contract
// (scripts/check.sh archives the file as an artifact); extend, don't
// rename.
type report struct {
	Analyzers   []string       `json:"analyzers"`
	Diagnostics []reportDiag   `json:"diagnostics"`
	Timings     []reportTiming `json:"timings"`
}

type reportDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type reportTiming struct {
	Analyzer string `json:"analyzer"`
	Path     string `json:"path"`
	Nanos    int64  `json:"nanos"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bcast-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	jsonPath := fs.String("json", "", "write a JSON report (diagnostics + timings) to `file`, \"-\" for stdout")
	budget := fs.Duration("timebudget", 0, "fail if any analyzer spends longer than `d` on a single package (0 disables)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: bcast-vet [-list] [-json file] [-timebudget d] [pattern ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "bcast-%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "bcast-vet: %v\n", err)
		return 2
	}
	diags, timings, err := analysis.VetTimed(root, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "bcast-vet: %v\n", err)
		return 2
	}
	for i := range diags {
		diags[i].Pos.Filename = relToCwd(diags[i].Pos.Filename)
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, stdout, analyzers, diags, timings); err != nil {
			fmt.Fprintf(stderr, "bcast-vet: %v\n", err)
			return 2
		}
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	over := 0
	if *budget > 0 {
		for _, tm := range timings {
			if tm.Elapsed > *budget {
				fmt.Fprintf(stderr, "bcast-vet: bcast-%s spent %v on %s (budget %v)\n",
					tm.Analyzer, tm.Elapsed.Round(time.Millisecond), tm.Path, *budget)
				over++
			}
		}
	}
	if n := len(diags); n > 0 || over > 0 {
		if n > 0 {
			fmt.Fprintf(stderr, "bcast-vet: %d issue(s)\n", n)
		}
		if over > 0 {
			fmt.Fprintf(stderr, "bcast-vet: %d analyzer run(s) over time budget\n", over)
		}
		return 1
	}
	return 0
}

// writeReport marshals the run into the -json contract shape.
func writeReport(path string, stdout io.Writer, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic, timings []analysis.Timing) error {
	r := report{
		Analyzers:   make([]string, 0, len(analyzers)),
		Diagnostics: make([]reportDiag, 0, len(diags)),
		Timings:     make([]reportTiming, 0, len(timings)),
	}
	for _, a := range analyzers {
		r.Analyzers = append(r.Analyzers, "bcast-"+a.Name)
	}
	for _, d := range diags {
		r.Diagnostics = append(r.Diagnostics, reportDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: "bcast-" + d.Analyzer,
			Message:  d.Message,
		})
	}
	for _, tm := range timings {
		r.Timings = append(r.Timings, reportTiming{Analyzer: "bcast-" + tm.Analyzer, Path: tm.Path, Nanos: tm.Elapsed.Nanoseconds()})
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// relToCwd shortens absolute diagnostic paths for terminal output.
func relToCwd(path string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil || len(rel) >= len(path) {
		return path
	}
	return rel
}
