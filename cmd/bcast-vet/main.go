// Command bcast-vet runs the repo's custom static analyzers — the
// determinism, pooling, goroutine-lifecycle, and error-sentinel
// invariants documented in DESIGN.md §9 — over module packages.
//
// Usage:
//
//	bcast-vet [-list] [pattern ...]
//
// Patterns are module-relative: "./..." (the default), "./internal/sim",
// or "internal/topo/...". Diagnostics print to stdout one per line as
// file:line:col: message [bcast-analyzer]; the exit status is 0 when the
// tree is clean, 1 when any analyzer fired, and 2 when loading or
// type-checking failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("bcast-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: bcast-vet [-list] [pattern ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "bcast-%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "bcast-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Vet(root, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "bcast-vet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		d.Pos.Filename = relToCwd(d.Pos.Filename)
		fmt.Fprintln(stdout, d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(stderr, "bcast-vet: %d issue(s)\n", n)
		return 1
	}
	return 0
}

// relToCwd shortens absolute diagnostic paths for terminal output.
func relToCwd(path string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil || len(rel) >= len(path) {
		return path
	}
	return rel
}
