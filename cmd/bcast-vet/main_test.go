package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWholeModuleIsClean mirrors the check.sh gate: bcast-vet over the
// full module must exit 0.
func TestWholeModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	if code := run([]string{"./..."}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("bcast-vet ./... exited %d, want 0", code)
	}
}

func TestListExitsZero(t *testing.T) {
	if code := run([]string{"-list"}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("bcast-vet -list exited %d, want 0", code)
	}
}

// TestSeededViolationExitsOne proves the failure path end to end: a
// scratch module with a determinism violation in a replay-critical
// package must drive the exit status to 1.
func TestSeededViolationExitsOne(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "internal", "sim"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		filepath.Join("internal", "sim", "sim.go"): "package sim\n\nimport \"time\"\n\nfunc Now() int64 { return time.Now().Unix() }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"./..."}, devnull, devnull); code != 1 {
		t.Fatalf("seeded violation exited %d, want 1", code)
	}
}

// TestUnmatchedPatternExitsTwo: a pattern that matches no packages
// (testdata trees included) is a usage error, not a clean run.
func TestUnmatchedPatternExitsTwo(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"./internal/analysis/testdata/src/errsentinel/bad"}, devnull, devnull); code != 2 {
		t.Fatalf("unmatched pattern exited %d, want 2", code)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-no-such-flag"}, devnull, devnull); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

// TestListShowsAllSevenAnalyzers pins the roster: adding or removing an
// analyzer must be a conscious doc-and-test change, not a drive-by.
func TestListShowsAllSevenAnalyzers(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out, io.Discard); code != 0 {
		t.Fatalf("-list exited %d, want 0", code)
	}
	want := []string{
		"bcast-determinism:",
		"bcast-pooledreturn:",
		"bcast-goroutinelifecycle:",
		"bcast-errsentinel:",
		"bcast-lockdiscipline:",
		"bcast-obsregistry:",
		"bcast-budgetflow:",
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("-list printed %d analyzers, want %d:\n%s", len(lines), len(want), out.String())
	}
	for i, prefix := range want {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
}

// TestJSONReportRoundTrips seeds a violation, writes the -json report,
// and decodes it back: the diagnostics and per-analyzer timings must
// survive the trip with the documented field names.
func TestJSONReportRoundTrips(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "internal", "sim"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		filepath.Join("internal", "sim", "sim.go"): "package sim\n\nimport \"time\"\n\nfunc Now() int64 { return time.Now().Unix() }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	jsonPath := filepath.Join(dir, "vet.json")
	if code := run([]string{"-json", jsonPath, "./..."}, io.Discard, io.Discard); code != 1 {
		t.Fatalf("seeded violation exited %d, want 1", code)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("decoding -json output: %v", err)
	}
	if len(r.Analyzers) != 7 {
		t.Errorf("report lists %d analyzers, want 7", len(r.Analyzers))
	}
	if len(r.Diagnostics) == 0 {
		t.Fatal("report has no diagnostics for a seeded violation")
	}
	d := r.Diagnostics[0]
	if d.Analyzer != "bcast-determinism" || d.Line == 0 || d.File == "" || d.Message == "" {
		t.Errorf("diagnostic did not round-trip: %+v", d)
	}
	if len(r.Timings) != 7 {
		t.Errorf("report has %d timings for a one-package module, want 7", len(r.Timings))
	}
	for _, tm := range r.Timings {
		if tm.Path != "scratch/internal/sim" {
			t.Errorf("timing path = %q, want scratch/internal/sim", tm.Path)
		}
		if tm.Nanos < 0 {
			t.Errorf("negative timing for %s", tm.Analyzer)
		}
	}
}

// TestTimeBudgetOverrunExitsOne: with a sub-nanosecond-scale budget,
// even a clean scratch module must fail the timing gate.
func TestTimeBudgetOverrunExitsOne(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":  "module scratch\n\ngo 1.22\n",
		"tiny.go": "package scratch\n\nfunc Tiny() int { return 1 }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	var errBuf bytes.Buffer
	if code := run([]string{"-timebudget", "1ns", "./..."}, io.Discard, &errBuf); code != 1 {
		t.Fatalf("1ns budget exited %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "over time budget") {
		t.Errorf("stderr missing budget overrun notice:\n%s", errBuf.String())
	}
	if code := run([]string{"-timebudget", "1h", "./..."}, io.Discard, io.Discard); code != 0 {
		t.Fatal("1h budget must pass on a clean module")
	}
}
