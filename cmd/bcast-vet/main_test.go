package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestWholeModuleIsClean mirrors the check.sh gate: bcast-vet over the
// full module must exit 0.
func TestWholeModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	if code := run([]string{"./..."}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("bcast-vet ./... exited %d, want 0", code)
	}
}

func TestListExitsZero(t *testing.T) {
	if code := run([]string{"-list"}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("bcast-vet -list exited %d, want 0", code)
	}
}

// TestSeededViolationExitsOne proves the failure path end to end: a
// scratch module with a determinism violation in a replay-critical
// package must drive the exit status to 1.
func TestSeededViolationExitsOne(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "internal", "sim"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		filepath.Join("internal", "sim", "sim.go"): "package sim\n\nimport \"time\"\n\nfunc Now() int64 { return time.Now().Unix() }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"./..."}, devnull, devnull); code != 1 {
		t.Fatalf("seeded violation exited %d, want 1", code)
	}
}

// TestUnmatchedPatternExitsTwo: a pattern that matches no packages
// (testdata trees included) is a usage error, not a clean run.
func TestUnmatchedPatternExitsTwo(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"./internal/analysis/testdata/src/errsentinel/bad"}, devnull, devnull); code != 2 {
		t.Fatalf("unmatched pattern exited %d, want 2", code)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-no-such-flag"}, devnull, devnull); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
