// Nested module that exists only to pin the versions of external
// analysis tools (see tools.go). It is never built as part of the main
// module: `go build ./...` and bcast-vet both skip nested modules. CI
// extracts the versions below and installs each with
// `go install <pkg>@<version>`.
module repro/tools

go 1.22

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
