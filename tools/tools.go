//go:build tools

// Package tools pins external analysis tools as module dependencies so
// their versions are reviewed like any other dependency bump (the
// canonical "tools.go" idiom). The build tag keeps the imports out of
// every real build; the surrounding nested module keeps them out of the
// main module's dependency graph entirely.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
