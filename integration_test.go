// Integration test: the whole system in one scenario. A keyed catalog is
// built into a search tree, optimally allocated, compiled, served over a
// real TCP socket to concurrent protocol clients, measured against the
// analytic simulator, and finally re-planned after the access pattern
// shifts — every layer of the repository in a single flow.
package repro_test

import (
	"math"
	"net"
	"testing"

	"repro/broadcast"
	"repro/internal/netcast"
	"repro/internal/sim"
)

func TestEndToEndSystem(t *testing.T) {
	// 1. Catalog → Hu-Tucker tree → optimal 2-channel schedule.
	items := []broadcast.Item{
		{Label: "news", Key: 10, Weight: 55},
		{Label: "sport", Key: 20, Weight: 25},
		{Label: "traffic", Key: 30, Weight: 40},
		{Label: "weather", Key: 40, Weight: 70},
		{Label: "stocks", Key: 50, Weight: 15},
		{Label: "events", Key: 60, Weight: 5},
	}
	planner, err := broadcast.NewPlanner(items, broadcast.PlannerConfig{
		Channels: 2,
		Drift:    0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := planner.Schedule()
	if !sched.Optimal {
		t.Fatal("six-item schedule should be exact")
	}

	// 2. Analytic expectations and a replayed workload must agree.
	power := broadcast.Power{Active: 1, Doze: 0.05}
	avg, err := sched.Measure(power)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sched.Replay(broadcast.ReplayConfig{Queries: 12000, Seed: 5, Power: power})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Access.Mean-avg.AccessTime) > 0.4 {
		t.Fatalf("replay mean %g far from expectation %g", rep.Access.Mean, avg.AccessTime)
	}

	// 3. The same schedule served over TCP: re-solve to reach the compiled
	// program (the facade keeps it private), then drive live lookups and
	// demand byte-identical metrics.
	tr := sched.Alloc.Tree()
	prog, err := sim.Compile(sched.Alloc, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	server, err := netcast.NewServer(prog)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server.Serve(ln)

	const clients = 4
	type outcome struct {
		idx   int
		found bool
		m     sim.Metrics
		err   error
	}
	done := make(chan outcome, clients)
	wants := make([]sim.Metrics, clients)
	dataIDs := tr.DataIDs()
	for i := 0; i < clients; i++ {
		d := dataIDs[i%len(dataIDs)]
		key, _ := tr.Key(d)
		arrival := i * 2
		want, err := prog.Query(arrival, d, sim.Power(power))
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want
		go func(idx, arrival int, key int64) {
			c, err := netcast.Dial(ln.Addr().String())
			if err != nil {
				done <- outcome{idx: idx, err: err}
				return
			}
			defer c.Close()
			found, _, m, err := c.Lookup(arrival, key, sim.Power(power))
			done <- outcome{idx, found, m, err}
		}(i, arrival, key)
	}
	go func() {
		server.AwaitConns(clients)
		server.Run(10*prog.CycleLen() + 2*clients)
	}()
	for i := 0; i < clients; i++ {
		out := <-done
		if out.err != nil || !out.found {
			t.Fatalf("client %d: found=%v err=%v", out.idx, out.found, out.err)
		}
		if out.m != wants[out.idx] {
			t.Fatalf("client %d: live %+v != sim %+v", out.idx, out.m, wants[out.idx])
		}
	}

	// 4. The access pattern shifts: "events" becomes the hottest item.
	for i := 0; i < 3000; i++ {
		planner.RecordAccess(60)
	}
	replanned, err := planner.MaybeReplan()
	if err != nil {
		t.Fatal(err)
	}
	if !replanned {
		t.Fatal("expected a replan after the shift")
	}
	newSched := planner.Schedule()
	nt := newSched.Alloc.Tree()
	oldSlot := sched.Alloc.Slot(tr.FindLabel("events"))
	newSlot := newSched.Alloc.Slot(nt.FindLabel("events"))
	if newSlot >= oldSlot {
		t.Fatalf("hot item did not move forward: slot %d -> %d", oldSlot, newSlot)
	}
	// The new schedule still serves every key.
	for _, it := range items {
		if _, found, err := newSched.QueryKey(1, it.Key, power); err != nil || !found {
			t.Fatalf("key %d after replan: found=%v err=%v", it.Key, found, err)
		}
	}
}
